// Package sdg builds the context-insensitive dependence graph variant
// of paper §5.2. Nodes are (instruction, call-graph-context) pairs:
// like WALA, the graph contains one copy of a method's statements per
// call graph node, so the object-sensitive cloning of container classes
// performed by the pointer analysis (paper §6.1) is visible to the
// slicers. Edges carry the classification thin slicing needs —
// producer flow, base-pointer flow, heap flow (direct store→load edges
// justified by the points-to analysis), parameter/return flow, and
// control dependence.
//
// Following §5.2, heap dependences are direct interprocedural edges
// from stores to may-aliased loads, avoiding the heap parameters that
// make the context-sensitive SDG (§5.3, package csslice) blow up.
package sdg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thinslice/internal/analysis/cdg"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/ir"
)

// EdgeKind classifies a dependence edge. (int32 keeps Dep at 12 bytes
// — the CSR edge array is the graph's dominant allocation.)
type EdgeKind int32

// Edge kinds. Thin slices traverse Local/Heap/Param/Return flow;
// traditional slices additionally traverse Base flow and control.
const (
	// EdgeLocal is intraprocedural SSA def-use flow into a producer
	// (or branch-condition) operand.
	EdgeLocal EdgeKind = iota
	// EdgeBase is def-use flow into a base-pointer or array-index
	// operand: a "base pointer flow dependence" (paper §3), ignored by
	// thin slicing.
	EdgeBase
	// EdgeHeap is a direct store→load edge between may-aliased heap
	// accesses (producer flow through the heap).
	EdgeHeap
	// EdgeParam is actual-argument → formal-parameter flow; Via names
	// the call site, which is itself a producer statement.
	EdgeParam
	// EdgeReturn is return-value → call-result flow.
	EdgeReturn
	// EdgeControl is intraprocedural control dependence on a branch.
	EdgeControl
	// EdgeCallControl makes callee statements that always execute on
	// entry control dependent on the call sites of their method.
	EdgeCallControl
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeLocal:
		return "local"
	case EdgeBase:
		return "base"
	case EdgeHeap:
		return "heap"
	case EdgeParam:
		return "param"
	case EdgeReturn:
		return "return"
	case EdgeControl:
		return "control"
	case EdgeCallControl:
		return "call-control"
	}
	return "?"
}

// IsProducerFlow reports whether edges of kind k carry producer value
// flow (the edges a thin slice follows).
func (k EdgeKind) IsProducerFlow() bool {
	switch k {
	case EdgeLocal, EdgeHeap, EdgeParam, EdgeReturn:
		return true
	}
	return false
}

// IsControl reports whether k is a control dependence kind.
func (k EdgeKind) IsControl() bool {
	return k == EdgeControl || k == EdgeCallControl
}

// Node identifies one statement instance: an instruction in a
// particular call-graph context.
type Node int32

// NoNode is the absent-node sentinel (e.g. Dep.Via on non-param edges).
const NoNode Node = -1

// Dep is one incoming dependence of a node: the node depends on Src.
// Via is the call-site node mediating param flow (itself part of the
// producer chain), or NoNode.
type Dep struct {
	Src  Node
	Kind EdgeKind
	Via  Node
}

// edgeRec is one buffered edge addition: node to depends via d. The
// construction phases emit these into flat pointer-free buffers;
// finalize distributes them into the CSR layout.
type edgeRec struct {
	to Node
	d  Dep
}

// Graph is the dependence graph, stored as in-edges per node.
type Graph struct {
	Prog *ir.Program
	Pts  *pointsto.Result

	// Truncated reports that construction stopped at the edge budget:
	// the node set is complete but some dependence edges are missing,
	// so slices over this graph may be under-approximate. LimitErr
	// carries the triggering *budget.ErrExhausted.
	Truncated bool
	LimitErr  error

	bud   *budget.Budget
	meter *budget.Meter
	stop  error
	// Edge records accumulate during construction in an ordered chain
	// of fixed-size chunks (edgeFull + the active edgeCur) — no
	// per-node slices and no doubling-growth copies, so emitting E
	// edges allocates exactly ceil(E/chunk) pointer-free blocks;
	// finalize stable-sorts the chain by target node into the CSR
	// arrays below. A node's in-edge order is its emission order,
	// which the counting sort preserves. The parallel build adopts its
	// per-bucket/per-task buffers directly as chunks, zero-copy.
	edgeFull [][]edgeRec
	edgeCur  []edgeRec
	// CSR (compressed sparse row) in-edge layout, built once after
	// construction: node n's dependences are csrDeps[csrOff[n]:csrOff[n+1]].
	// A flat layout keeps the backward closure's inner loop on one
	// contiguous array instead of chasing per-node slice headers.
	csrOff   []int32
	csrDeps  []Dep
	csrBuild time.Duration
	mctxs    []*pointsto.MCtx
	base     map[*pointsto.MCtx]int32 // first node of each context
	nodeCtx  []*pointsto.MCtx         // dense: node → context (one entry per node)
	firstID  map[*ir.Method]int       // first instruction ID of each method
	numEdges int
	// callerNodes are the call-site nodes that may invoke a context.
	callerNodes map[*pointsto.MCtx][]Node
	// returns caches each method's Return instructions: linkCall needs
	// them once per (call site, callee context) pair, and re-walking
	// the whole callee body every time is quadratic in practice.
	returns map[*ir.Method][]*ir.Return
}


// NumNodes returns the number of statement instances (the paper's
// "SDG Statements": scalar statements across call-graph clones,
// without heap parameters).
func (g *Graph) NumNodes() int { return len(g.nodeCtx) }

// NumEdges returns the number of dependence edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Deps returns the dependences of node n, in construction order (a
// view into the CSR edge array; callers must not mutate it).
func (g *Graph) Deps(n Node) []Dep { return g.csrDeps[g.csrOff[n]:g.csrOff[n+1]] }

// CSRBuildDuration reports how long packing the per-node edge lists
// into the CSR layout took (the bench harness's csr_build_us column).
func (g *Graph) CSRBuildDuration() time.Duration { return g.csrBuild }

// edgeChunkSize is the edgeRec capacity of one emission chunk (~768KB).
const edgeChunkSize = 1 << 15

// emit appends one edge record to the chunk chain.
func (g *Graph) emit(to Node, d Dep) {
	if len(g.edgeCur) == cap(g.edgeCur) {
		if g.edgeCur != nil {
			g.edgeFull = append(g.edgeFull, g.edgeCur)
		}
		g.edgeCur = make([]edgeRec, 0, edgeChunkSize)
	}
	g.edgeCur = append(g.edgeCur, edgeRec{to, d})
}

// finalize distributes the chunked edge records into the CSR layout
// with a stable counting sort by target node and releases the chunks.
// A node's in-edges come from exactly one emitter per construction
// phase and phases run in a fixed order, so emission order per node
// equals the sequential addDep order — and the stable sort preserves
// it, which keeps Fingerprint and the codec byte stream identical to
// the old slice-of-slices representation.
func (g *Graph) finalize() {
	start := time.Now()
	if len(g.edgeCur) > 0 {
		g.edgeFull = append(g.edgeFull, g.edgeCur)
	}
	g.edgeCur = nil
	n := len(g.nodeCtx)
	total := 0
	off := make([]int32, n+1)
	for _, c := range g.edgeFull {
		total += len(c)
		for i := range c {
			off[c[i].to+1]++
		}
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	deps := make([]Dep, total)
	cur := make([]int32, n)
	copy(cur, off[:n])
	for _, c := range g.edgeFull {
		for i := range c {
			e := &c[i]
			deps[cur[e.to]] = e.d
			cur[e.to]++
		}
	}
	g.csrOff, g.csrDeps = off, deps
	g.numEdges = total
	g.edgeFull = nil
	g.csrBuild = time.Since(start)
}

// CtxOf returns the call-graph context of n.
func (g *Graph) CtxOf(n Node) *pointsto.MCtx { return g.nodeCtx[n] }

// InstrOf returns the instruction of n.
func (g *Graph) InstrOf(n Node) ir.Instr {
	mc := g.nodeCtx[n]
	local := int(n) - int(g.base[mc])
	return g.Prog.InstrByID(g.firstID[mc.Method] + local)
}

// NodeOf returns the node for an instruction in a specific context.
func (g *Graph) NodeOf(mc *pointsto.MCtx, ins ir.Instr) Node {
	return Node(int(g.base[mc]) + ins.ID() - g.firstID[ins.Block().Method])
}

// NodesOf returns all statement instances of an instruction (one per
// context its method was analyzed under).
func (g *Graph) NodesOf(ins ir.Instr) []Node {
	m := ins.Block().Method
	var out []Node
	for _, mc := range g.Pts.MCtxsOf(m) {
		out = append(out, g.NodeOf(mc, ins))
	}
	return out
}

// Reachable reports whether m has at least one analyzed context.
func (g *Graph) Reachable(m *ir.Method) bool {
	return len(g.Pts.MCtxsOf(m)) > 0
}

// CallerNodes returns the call-site nodes that may invoke context mc.
func (g *Graph) CallerNodes(mc *pointsto.MCtx) []Node { return g.callerNodes[mc] }

// Fingerprint returns a sha256 digest of the graph's full structure —
// every node's ordered dependence list, the per-context caller-node
// lists, and the edge count. Two builds of the same program (sequential
// or parallel, any worker count) must produce identical fingerprints;
// the equivalence tests pin exactly that.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	buf := make([]byte, 8)
	wr := func(v int64) {
		binary.LittleEndian.PutUint64(buf, uint64(v))
		h.Write(buf)
	}
	wr(int64(len(g.nodeCtx)))
	wr(int64(g.numEdges))
	for n := range g.nodeCtx {
		deps := g.Deps(Node(n))
		wr(int64(len(deps)))
		for _, d := range deps {
			wr(int64(d.Src))
			wr(int64(d.Kind))
			wr(int64(d.Via))
		}
	}
	for _, mc := range g.mctxs {
		callers := g.callerNodes[mc]
		wr(int64(len(callers)))
		for _, c := range callers {
			wr(int64(c))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

type heapAccess struct {
	node   Node
	objs   []int // sorted object IDs of the base pointer in this context
	maskLo int32 // first 64-bit word of mask in object-ID space
	mask   []uint64
}

// newHeapAccess builds an access with a word-addressed bitset over its
// object IDs. The pairing phase tests may-alias with a handful of word
// ANDs instead of a sorted-list merge — on realistic programs the IDs
// of one base pointer cluster into a single word, so each of the
// loads×stores probes costs one AND. objs must be sorted.
func newHeapAccess(node Node, objs []int) heapAccess {
	a := heapAccess{node: node, objs: objs}
	if len(objs) > 0 {
		a.maskLo = int32(objs[0] >> 6)
		a.mask = make([]uint64, int32(objs[len(objs)-1]>>6)-a.maskLo+1)
		for _, o := range objs {
			a.mask[int32(o>>6)-a.maskLo] |= 1 << (uint(o) & 63)
		}
	}
	return a
}

// aliases reports whether the two accesses' object sets intersect,
// touching only the word range both masks cover.
func (a *heapAccess) aliases(b *heapAccess) bool {
	lo := max(a.maskLo, b.maskLo)
	hi := min(a.maskLo+int32(len(a.mask)), b.maskLo+int32(len(b.mask)))
	for w := lo; w < hi; w++ {
		if a.mask[w-a.maskLo]&b.mask[w-b.maskLo] != 0 {
			return true
		}
	}
	return false
}

// heapIndex collects the heap accesses discovered during the scan
// phase, keyed so the pairing phase can match stores to may-aliased
// loads. Accesses are appended in deterministic (context, instruction)
// order; the pairing phase relies on that order for reproducible edge
// lists.
type heapIndex struct {
	fieldStores  map[string][]heapAccess
	fieldLoads   map[string][]heapAccess
	elemStores   []heapAccess
	elemLoads    []heapAccess
	lenReads     []heapAccess
	staticStores map[string][]Node
	staticLoads  map[string][]Node
}

func newHeapIndex() *heapIndex {
	return &heapIndex{
		fieldStores:  make(map[string][]heapAccess),
		fieldLoads:   make(map[string][]heapAccess),
		staticStores: make(map[string][]Node),
		staticLoads:  make(map[string][]Node),
	}
}

// merge appends o's accesses after h's. Called in context order by the
// parallel build, this reproduces the sequential append order exactly.
func (h *heapIndex) merge(o *heapIndex) {
	for k, v := range o.fieldStores {
		h.fieldStores[k] = append(h.fieldStores[k], v...)
	}
	for k, v := range o.fieldLoads {
		h.fieldLoads[k] = append(h.fieldLoads[k], v...)
	}
	h.elemStores = append(h.elemStores, o.elemStores...)
	h.elemLoads = append(h.elemLoads, o.elemLoads...)
	h.lenReads = append(h.lenReads, o.lenReads...)
	for k, v := range o.staticStores {
		h.staticStores[k] = append(h.staticStores[k], v...)
	}
	for k, v := range o.staticLoads {
		h.staticLoads[k] = append(h.staticLoads[k], v...)
	}
}

// scanEmit sinks one context's scan-phase discoveries. The sequential
// build writes straight into the graph (ticking the shared budget per
// edge); the parallel build records into per-context buffers that are
// merged in context order afterwards. The two-pass build's fill pass
// leaves caller and heap nil: dependence edges are re-emitted but the
// heap index and caller lists from the first pass are kept.
type scanEmit struct {
	// tick is called once per instruction; returning false stops the
	// scan of the remaining instructions.
	tick func() bool
	// dep adds one dependence edge.
	dep func(to Node, d Dep)
	// caller records a call-site node that may invoke callee (nil to
	// skip recording).
	caller func(callee *pointsto.MCtx, n Node)
	// heap collects heap accesses for the pairing phase (nil to skip).
	heap *heapIndex
}

// Build constructs the dependence graph over the contexts reachable in
// pts, unbounded.
func Build(prog *ir.Program, pts *pointsto.Result) *Graph {
	g, err := BuildBudget(prog, pts, nil)
	if err != nil {
		// Unreachable: a nil budget cannot be canceled or exhausted.
		panic(err)
	}
	return g
}

// BuildBudget constructs the dependence graph under a budget
// (PhaseSDG, one step per instruction scanned or edge added). A
// canceled context or passed deadline aborts with *budget.ErrCanceled;
// an exhausted step cap returns the partial graph flagged Truncated
// with a nil error — all nodes present, some edges missing.
func BuildBudget(prog *ir.Program, pts *pointsto.Result, b *budget.Budget) (*Graph, error) {
	return BuildWorkers(prog, pts, b, 1)
}

// BuildWorkers is BuildBudget with construction spread over up to
// workers goroutines (workers < 1 selects GOMAXPROCS). The three
// construction phases parallelize independently — per-context scans
// are buffered and merged in context order, heap pairing fans out over
// node-disjoint access groups, and control dependences fan out per
// context — so a completed parallel build is byte-identical to the
// sequential one. A step-capped budget forces workers = 1: truncation
// must stop at the same deterministic point the sequential build
// stops at, which requires the sequential tick interleaving. Workers
// draw per-goroutine meters from the budget, so cancellation and
// deadlines are still honored promptly on the parallel path.
// parallelMinNodes gates the worker pool: below this many statement
// instances the scan buffers, merge pass, and goroutine handoff cost
// more than the construction itself, so small programs always build
// sequentially and never pay pool overhead. A variable so the
// equivalence tests can force the parallel path on small programs.
var parallelMinNodes = 24576

func BuildWorkers(prog *ir.Program, pts *pointsto.Result, b *budget.Budget, workers int) (*Graph, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && b.Limited(budget.PhaseSDG) {
		workers = 1
	}
	g := &Graph{
		Prog:        prog,
		Pts:         pts,
		bud:         b,
		meter:       b.Phase(budget.PhaseSDG),
		base:        make(map[*pointsto.MCtx]int32),
		firstID:     make(map[*ir.Method]int),
		callerNodes: make(map[*pointsto.MCtx][]Node),
	}
	// One walk per method collects everything the layout and linkCall
	// need (first instruction ID, instruction count, Return list) —
	// contexts then reuse the per-method numbers instead of re-walking
	// bodies once per clone.
	g.returns = make(map[*ir.Method][]*ir.Return, len(prog.Methods))
	methodSize := make(map[*ir.Method]int, len(prog.Methods))
	for _, m := range prog.Methods {
		first, n := -1, 0
		var rets []*ir.Return
		m.Instrs(func(ins ir.Instr) {
			if first < 0 {
				first = ins.ID()
			}
			n++
			if ret, ok := ins.(*ir.Return); ok {
				rets = append(rets, ret)
			}
		})
		g.firstID[m] = first
		g.returns[m] = rets
		methodSize[m] = n
	}
	g.mctxs = pts.MCtxs()
	total := 0
	ctxSize := make([]int, len(g.mctxs))
	for i, mc := range g.mctxs {
		g.base[mc] = int32(total)
		ctxSize[i] = methodSize[mc.Method]
		total += ctxSize[i]
	}
	g.nodeCtx = make([]*pointsto.MCtx, 0, total)
	for i, mc := range g.mctxs {
		for j := 0; j < ctxSize[i]; j++ {
			g.nodeCtx = append(g.nodeCtx, mc)
		}
	}
	if workers > 1 && total < parallelMinNodes {
		workers = 1
	}
	if workers <= 1 {
		return g.buildSequential()
	}
	return g.buildParallel(workers, ctxSize)
}

// ctxRange is one contiguous run of contexts, g.mctxs[lo:hi), assigned
// to a single scan buffer by the size-aware partitioner.
type ctxRange struct{ lo, hi int }

// partitionCtxs splits the context list into contiguous buckets of
// roughly equal instruction count (about 4 buckets per worker so the
// pool can rebalance around stragglers). Contiguity keeps the merge
// pass a simple in-order walk that replays the sequential edge order.
func partitionCtxs(ctxSize []int, workers int) []ctxRange {
	total := 0
	for _, n := range ctxSize {
		total += n
	}
	target := total/(workers*4) + 1
	var out []ctxRange
	lo, acc := 0, 0
	for i, n := range ctxSize {
		acc += n
		if acc >= target {
			out = append(out, ctxRange{lo, i + 1})
			lo, acc = i+1, 0
		}
	}
	if lo < len(ctxSize) {
		out = append(out, ctxRange{lo, len(ctxSize)})
	}
	return out
}

// scanCtx performs the per-context scan phase: intraprocedural def-use
// edges, heap-access collection, and call linking.
func (g *Graph) scanCtx(mc *pointsto.MCtx, em scanEmit) {
	// Points-to IDs arrive sorted straight off the solver's bitsets;
	// the pairing phase's intersection tests rely on that order.
	objIDs := func(r *ir.Reg) []int {
		return g.Pts.PointsToIDsIn(nil, r, mc)
	}
	// All same-context node numbers share one base offset; hoisting it
	// replaces two map lookups per instruction (and per use) with
	// arithmetic on the instruction ID.
	delta := int(g.base[mc]) - g.firstID[mc.Method]
	// One closure, hoisted out of the walk, visits every operand
	// allocation-free (node is rebound per instruction).
	var node Node
	emitUse := func(u *ir.Reg, role ir.Role) {
		if u.Def == nil {
			return
		}
		kind := EdgeLocal
		if role == ir.RoleBase {
			kind = EdgeBase
		}
		em.dep(node, Dep{Src: Node(delta + u.Def.ID()), Kind: kind, Via: NoNode})
	}
	mc.Method.Instrs(func(ins ir.Instr) {
		if !em.tick() {
			return
		}
		node = Node(delta + ins.ID())
		// Local/base def-use edges from operand definitions. Call
		// operands are excluded: argument flow reaches the callee's
		// formal parameters via EdgeParam, and the call node itself
		// only receives EdgeReturn flow — following the SDG shape,
		// where a call result does not directly depend on the
		// arguments in the caller.
		if _, isCall := ins.(*ir.Call); !isCall {
			ins.EachUse(emitUse)
		}
		if call, ok := ins.(*ir.Call); ok {
			g.linkCall(mc, node, call, em)
		} else if h := em.heap; h != nil {
			switch ins := ins.(type) {
			case *ir.SetField:
				h.fieldStores[ins.Field.QualifiedName()] = append(
					h.fieldStores[ins.Field.QualifiedName()], newHeapAccess(node, objIDs(ins.Obj)))
			case *ir.GetField:
				h.fieldLoads[ins.Field.QualifiedName()] = append(
					h.fieldLoads[ins.Field.QualifiedName()], newHeapAccess(node, objIDs(ins.Obj)))
			case *ir.ArrayStore:
				h.elemStores = append(h.elemStores, newHeapAccess(node, objIDs(ins.Arr)))
			case *ir.ArrayLoad:
				h.elemLoads = append(h.elemLoads, newHeapAccess(node, objIDs(ins.Arr)))
			case *ir.ArrayLen:
				h.lenReads = append(h.lenReads, heapAccess{node: node, objs: objIDs(ins.Arr)})
			case *ir.SetStatic:
				h.staticStores[ins.Field.QualifiedName()] = append(h.staticStores[ins.Field.QualifiedName()], node)
			case *ir.GetStatic:
				h.staticLoads[ins.Field.QualifiedName()] = append(h.staticLoads[ins.Field.QualifiedName()], node)
			}
		}
	})
}

// lenDeps returns the heap edges of one array-length read: the
// allocation sites of its may-pointees, across every context instance
// of the allocation (the object's heap context names the allocating
// container context only indirectly).
func (g *Graph) lenDeps(lr heapAccess, add func(to Node, d Dep)) {
	seen := make(map[Node]bool)
	for _, id := range lr.objs {
		o := g.Pts.Objects()[id]
		if !o.IsArray() {
			continue
		}
		for _, src := range g.NodesOf(o.Site) {
			if !seen[src] {
				seen[src] = true
			add(lr.node, Dep{Src: src, Kind: EdgeHeap, Via: NoNode})
			}
		}
	}
}

// controlCtx adds one context's control dependence edges using the
// method's (shared, immutable) intraprocedural CDG.
func (g *Graph) controlCtx(mc *pointsto.MCtx, cg *cdg.Graph, add func(to Node, d Dep)) {
	callers := g.callerNodes[mc]
	delta := int(g.base[mc]) - g.firstID[mc.Method]
	mc.Method.Instrs(func(ins ir.Instr) {
		node := Node(delta + ins.ID())
		for _, br := range cg.InstrDeps(ins) {
			if br != ins {
				add(node, Dep{Src: Node(delta + br.ID()), Kind: EdgeControl, Via: NoNode})
			}
		}
		if cg.DependsOnEntry(ins) {
			for _, caller := range callers {
				add(node, Dep{Src: caller, Kind: EdgeCallControl, Via: NoNode})
			}
		}
	})
}


// maskKey identifies a single-word points-to mask; loads with equal
// masks match exactly the same stores, so per-field pairing caches the
// match list once per distinct mask instead of re-testing every
// (load, store) pair — and the two-pass build would otherwise pay the
// full quadratic sweep twice. Multi-word masks (rare: they need object
// IDs spread over >64 contiguous IDs) fall back to direct pairing.
type maskKey struct {
	lo int32
	w  uint64
}

// matchStores returns the nodes of stores aliasing ld, in stores slice
// order (the order the pairing loops have always emitted), caching by
// mask signature when ld's mask is a single word.
func matchStores(ld *heapAccess, stores []heapAccess, cache map[maskKey][]Node) []Node {
	if len(ld.mask) == 1 {
		k := maskKey{ld.maskLo, ld.mask[0]}
		if m, ok := cache[k]; ok {
			return m
		}
		var m []Node
		for i := range stores {
			if ld.aliases(&stores[i]) {
				m = append(m, stores[i].node)
			}
		}
		cache[k] = m
		return m
	}
	var m []Node
	for i := range stores {
		if ld.aliases(&stores[i]) {
			m = append(m, stores[i].node)
		}
	}
	return m
}

// emitHeapAndControl runs the pairing, array-length, static, and
// control phases over an already-built heap index, sending every edge
// to add. tick, when non-nil, is checked once per candidate heap load
// (the pairing phase is the graph's quadratic hot spot); the fill pass
// of the two-pass build passes nil and re-emits unconditionally.
func (g *Graph) emitHeapAndControl(h *heapIndex, cdgCache map[*ir.Method]*cdg.Graph, tick func() bool, add func(to Node, d Dep)) {
	g.emitHeap(h, tick, add)
	if g.stop != nil {
		return
	}
	// Control dependence edges (intraprocedural graphs are shared
	// across contexts; edges are added per context instance).
	for _, mc := range g.mctxs {
		if g.stop != nil {
			return
		}
		cg := cdgCache[mc.Method]
		if cg == nil {
			cg = cdg.Build(mc.Method)
			cdgCache[mc.Method] = cg
		}
		g.controlCtx(mc, cg, add)
	}
}

// emitHeap runs the points-to-derived phases — heap pairing, array
// lengths, statics — over an already-built heap index. BuildDelta
// shares it: these edges are re-derived from the new points-to result
// on every incremental rebuild.
func (g *Graph) emitHeap(h *heapIndex, tick func() bool, add func(to Node, d Dep)) {
	// Heap edges: store→load when the base points-to sets (in the
	// respective contexts) intersect. Map iteration order varies run to
	// run, but each load node lives under exactly one field name, so
	// every node's in-edge sequence is still deterministic.
	for fname, loads := range h.fieldLoads { //determinism:ok — single emitter per load node (see above)
		if g.stop != nil {
			return
		}
		stores := h.fieldStores[fname]
		cache := make(map[maskKey][]Node)
		for i := range loads {
			if tick != nil && !tick() {
				return
			}
			for _, st := range matchStores(&loads[i], stores, cache) {
				add(loads[i].node, Dep{Src: st, Kind: EdgeHeap, Via: NoNode})
			}
		}
	}
	for _, ld := range h.elemLoads {
		if tick != nil && !tick() {
			return
		}
		for _, st := range h.elemStores {
			if ld.aliases(&st) {
				add(ld.node, Dep{Src: st.node, Kind: EdgeHeap, Via: NoNode})
			}
		}
	}
	for _, lr := range h.lenReads {
		if g.stop != nil {
			return
		}
		g.lenDeps(lr, add)
	}
	// Static fields are single global locations: every store reaches
	// every load of the same field.
	for fname, loads := range h.staticLoads { //determinism:ok — single emitter per load node
		if g.stop != nil {
			return
		}
		for _, ld := range loads {
			for _, st := range h.staticStores[fname] {
				add(ld, Dep{Src: st, Kind: EdgeHeap, Via: NoNode})
			}
		}
	}
}

// buildSequential is the reference construction: one goroutine, every
// step ticking the shared meter, deterministic truncation on an
// exhausted step cap. Unmetered builds take the two-pass direct-CSR
// path instead.
func (g *Graph) buildSequential() (*Graph, error) {
	if !g.bud.Limited(budget.PhaseSDG) {
		return g.buildTwoPass()
	}
	h := newHeapIndex()
	em := scanEmit{
		tick: g.tick,
		dep:  g.addDep,
		caller: func(callee *pointsto.MCtx, n Node) {
			g.callerNodes[callee] = append(g.callerNodes[callee], n)
		},
		heap: h,
	}
	for _, mc := range g.mctxs {
		if g.stop != nil {
			break
		}
		g.scanCtx(mc, em)
	}
	g.emitHeapAndControl(h, make(map[*ir.Method]*cdg.Graph), g.tick, g.addDep)
	if g.stop != nil {
		if budget.IsCanceled(g.stop) {
			return nil, g.stop
		}
		g.Truncated = true
		g.LimitErr = g.stop
	}
	g.finalize()
	return g, nil
}

// buildTwoPass is the sequential construction for builds without a
// step cap: a counting pass sizes every node's in-edge list, then a
// second emission pass writes each edge straight into its final CSR
// slot — no intermediate edge buffers at all, roughly a quarter of
// the build's allocated bytes on the larger corpora. Step-capped
// budgets stay on the single-pass path above because deterministic
// truncation requires the exact sequential tick interleaving; here the
// meter can only fail on cancellation or deadline, and either aborts
// the build outright. The fill pass re-runs the phases in the same
// order over the retained heap index and CDG cache (heap and caller
// recording suppressed), so every node's in-edge sequence — and
// therefore Fingerprint and the codec byte stream — is identical to
// the single-pass result.
func (g *Graph) buildTwoPass() (*Graph, error) {
	n := len(g.nodeCtx)
	off := make([]int32, n+1)
	count := func(to Node, d Dep) { off[to+1]++ }
	h := newHeapIndex()
	cdgCache := make(map[*ir.Method]*cdg.Graph)
	em := scanEmit{
		tick: g.tick,
		dep:  count,
		caller: func(callee *pointsto.MCtx, nd Node) {
			g.callerNodes[callee] = append(g.callerNodes[callee], nd)
		},
		heap: h,
	}
	for _, mc := range g.mctxs {
		if g.stop != nil {
			break
		}
		g.scanCtx(mc, em)
	}
	g.emitHeapAndControl(h, cdgCache, g.tick, count)
	if g.stop != nil {
		return nil, g.stop
	}
	start := time.Now()
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	total := int(off[n])
	deps := make([]Dep, total)
	cur := make([]int32, n)
	copy(cur, off[:n])
	g.csrBuild = time.Since(start)
	place := func(to Node, d Dep) {
		deps[cur[to]] = d
		cur[to]++
	}
	em2 := scanEmit{tick: func() bool { return true }, dep: place}
	for _, mc := range g.mctxs {
		g.scanCtx(mc, em2)
	}
	g.emitHeapAndControl(h, cdgCache, nil, place)
	g.csrOff, g.csrDeps, g.numEdges = off, deps, total
	return g, nil
}

// callerAdd is one buffered caller-node record of the parallel scan.
type callerAdd struct {
	callee *pointsto.MCtx
	node   Node
}

// ctxScan is the buffered outcome of scanning one context.
type ctxScan struct {
	deps    []edgeRec
	callers []callerAdd
	heap    *heapIndex
}

// buildParallel runs the three construction phases over a bounded
// worker pool, with contexts partitioned into contiguous size-balanced
// buckets (one scan buffer per bucket instead of per context). Only
// cancellation/deadline errors can occur here (step caps force the
// sequential path), so an error aborts the whole build.
func (g *Graph) buildParallel(workers int, ctxSize []int) (*Graph, error) {
	// Phase 1: scan context buckets into per-bucket buffers.
	buckets := partitionCtxs(ctxSize, workers)
	scans := make([]*ctxScan, len(buckets))
	err := g.forEach(workers, len(buckets), func(m *budget.Meter, i int) error {
		cs := &ctxScan{heap: newHeapIndex()}
		var stopErr error
		em := scanEmit{
			tick: func() bool {
				if stopErr != nil {
					return false
				}
				if err := m.Tick(); err != nil {
					stopErr = err
					return false
				}
				return true
			},
			dep:    func(to Node, d Dep) { cs.deps = append(cs.deps, edgeRec{to, d}) },
			caller: func(callee *pointsto.MCtx, n Node) { cs.callers = append(cs.callers, callerAdd{callee, n}) },
			heap:   cs.heap,
		}
		for _, mc := range g.mctxs[buckets[i].lo:buckets[i].hi] {
			if stopErr != nil {
				break
			}
			g.scanCtx(mc, em)
		}
		scans[i] = cs
		return stopErr
	})
	if err != nil {
		return nil, err
	}
	// Merge in bucket (= context) order: replays the sequential addDep
	// order.
	h := newHeapIndex()
	for _, cs := range scans {
		if len(cs.deps) > 0 {
			g.edgeFull = append(g.edgeFull, cs.deps)
		}
		for _, ca := range cs.callers {
			g.callerNodes[ca.callee] = append(g.callerNodes[ca.callee], ca.node)
		}
		h.merge(cs.heap)
	}

	// Phase 2: heap pairing over node-disjoint access groups. Each
	// group owns its load nodes exclusively (an instruction accesses
	// exactly one field), so per-node edge order is within-task order
	// regardless of how the task buffers are concatenated.
	var tasks []func(m *budget.Meter, sink func(Node, Dep)) error
	for _, fname := range sortedKeys(h.fieldLoads) {
		loads, stores := h.fieldLoads[fname], h.fieldStores[fname]
		tasks = append(tasks, func(m *budget.Meter, sink func(Node, Dep)) error {
			cache := make(map[maskKey][]Node)
			for i := range loads {
				if err := m.Tick(); err != nil {
					return err
				}
				for _, st := range matchStores(&loads[i], stores, cache) {
					sink(loads[i].node, Dep{Src: st, Kind: EdgeHeap, Via: NoNode})
				}
			}
			return nil
		})
	}
	tasks = append(tasks, func(m *budget.Meter, sink func(Node, Dep)) error {
		for _, ld := range h.elemLoads {
			if err := m.Tick(); err != nil {
				return err
			}
			for _, st := range h.elemStores {
				if ld.aliases(&st) {
					sink(ld.node, Dep{Src: st.node, Kind: EdgeHeap, Via: NoNode})
				}
			}
		}
		return nil
	})
	tasks = append(tasks, func(m *budget.Meter, sink func(Node, Dep)) error {
		for _, lr := range h.lenReads {
			if err := m.Tick(); err != nil {
				return err
			}
			g.lenDeps(lr, sink)
		}
		return nil
	})
	for _, fname := range sortedKeys(h.staticLoads) {
		loads, stores := h.staticLoads[fname], h.staticStores[fname]
		tasks = append(tasks, func(m *budget.Meter, sink func(Node, Dep)) error {
			if err := m.Err(); err != nil {
				return err
			}
			for _, ld := range loads {
				for _, st := range stores {
					sink(ld, Dep{Src: st, Kind: EdgeHeap, Via: NoNode})
				}
			}
			return nil
		})
	}
	taskBufs := make([][]edgeRec, len(tasks))
	if err := g.forEach(workers, len(tasks), func(m *budget.Meter, i int) error {
		return tasks[i](m, func(to Node, d Dep) { taskBufs[i] = append(taskBufs[i], edgeRec{to, d}) })
	}); err != nil {
		return nil, err
	}
	for _, buf := range taskBufs {
		if len(buf) > 0 {
			g.edgeFull = append(g.edgeFull, buf)
		}
	}

	// Phase 3: control dependences. Intraprocedural CDGs first (one
	// per method, in first-context order), then per-context edges;
	// each context appends only to its own nodes' rows.
	var methods []*ir.Method
	cdgOf := make(map[*ir.Method]*cdg.Graph)
	for _, mc := range g.mctxs {
		if _, ok := cdgOf[mc.Method]; !ok {
			cdgOf[mc.Method] = nil
			methods = append(methods, mc.Method)
		}
	}
	cgs := make([]*cdg.Graph, len(methods))
	if err := g.forEach(workers, len(methods), func(m *budget.Meter, i int) error {
		if err := m.Err(); err != nil {
			return err
		}
		cgs[i] = cdg.Build(methods[i])
		return nil
	}); err != nil {
		return nil, err
	}
	for i, m := range methods {
		cdgOf[m] = cgs[i]
	}
	ctrlBufs := make([][]edgeRec, len(buckets))
	if err := g.forEach(workers, len(buckets), func(m *budget.Meter, i int) error {
		if err := m.Err(); err != nil {
			return err
		}
		for _, mc := range g.mctxs[buckets[i].lo:buckets[i].hi] {
			g.controlCtx(mc, cdgOf[mc.Method], func(to Node, d Dep) { ctrlBufs[i] = append(ctrlBufs[i], edgeRec{to, d}) })
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, buf := range ctrlBufs {
		if len(buf) > 0 {
			g.edgeFull = append(g.edgeFull, buf)
		}
	}

	g.finalize()
	return g, nil
}

// forEach runs f(meter, i) for i in [0,n) over a bounded worker pool.
// Each worker draws its own budget meter (shared meters are not
// goroutine-safe); the first error aborts the pool and is returned.
// A worker panic is re-raised on the calling goroutine so the facade's
// recover boundary still converts it to a typed internal error.
func (g *Graph) forEach(workers, n int, f func(m *budget.Meter, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
		panicV any
		halt   atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicV == nil {
						panicV = r
					}
					mu.Unlock()
					halt.Store(true)
				}
			}()
			m := g.bud.Phase(budget.PhaseSDG)
			for !halt.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(m, i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					halt.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return first
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// tick spends one construction step; once the budget fails the graph
// stops growing (sticky), and Build interprets the violation.
func (g *Graph) tick() bool {
	if g.stop != nil {
		return false
	}
	if err := g.meter.Tick(); err != nil {
		g.stop = err
		return false
	}
	return true
}

func (g *Graph) addDep(to Node, d Dep) {
	if !g.tick() {
		return
	}
	g.emit(to, d)
}

// linkCall adds parameter and return edges for every callee context of
// a call site in a caller context.
func (g *Graph) linkCall(caller *pointsto.MCtx, callNode Node, call *ir.Call, em scanEmit) {
	callerDelta := int(g.base[caller]) - g.firstID[caller.Method]
	for _, callee := range g.Pts.CalleesAt(call, caller) {
		if em.caller != nil {
			em.caller(callee, callNode)
		}
		calleeDelta := int(g.base[callee]) - g.firstID[callee.Method]
		params := callee.Method.Params
		offset := 0
		if !callee.Method.Sig.Static {
			offset = 1
			if call.Recv != nil && call.Recv.Def != nil {
				em.dep(Node(calleeDelta+params[0].ID()),
					Dep{Src: Node(callerDelta + call.Recv.Def.ID()), Kind: EdgeParam, Via: callNode})
			}
		}
		for i, arg := range call.Args {
			if i+offset >= len(params) {
				break
			}
			if arg.Def != nil {
				em.dep(Node(calleeDelta+params[i+offset].ID()),
					Dep{Src: Node(callerDelta + arg.Def.ID()), Kind: EdgeParam, Via: callNode})
			}
		}
		if call.Dst != nil {
			for _, ret := range g.returns[callee.Method] {
				if ret.Val != nil {
					em.dep(callNode, Dep{Src: Node(calleeDelta + ret.ID()), Kind: EdgeReturn, Via: NoNode})
				}
			}
		}
	}
}

func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
