// Package sdg builds the context-insensitive dependence graph variant
// of paper §5.2. Nodes are (instruction, call-graph-context) pairs:
// like WALA, the graph contains one copy of a method's statements per
// call graph node, so the object-sensitive cloning of container classes
// performed by the pointer analysis (paper §6.1) is visible to the
// slicers. Edges carry the classification thin slicing needs —
// producer flow, base-pointer flow, heap flow (direct store→load edges
// justified by the points-to analysis), parameter/return flow, and
// control dependence.
//
// Following §5.2, heap dependences are direct interprocedural edges
// from stores to may-aliased loads, avoiding the heap parameters that
// make the context-sensitive SDG (§5.3, package csslice) blow up.
package sdg

import (
	"sort"

	"thinslice/internal/analysis/cdg"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/ir"
)

// EdgeKind classifies a dependence edge.
type EdgeKind int

// Edge kinds. Thin slices traverse Local/Heap/Param/Return flow;
// traditional slices additionally traverse Base flow and control.
const (
	// EdgeLocal is intraprocedural SSA def-use flow into a producer
	// (or branch-condition) operand.
	EdgeLocal EdgeKind = iota
	// EdgeBase is def-use flow into a base-pointer or array-index
	// operand: a "base pointer flow dependence" (paper §3), ignored by
	// thin slicing.
	EdgeBase
	// EdgeHeap is a direct store→load edge between may-aliased heap
	// accesses (producer flow through the heap).
	EdgeHeap
	// EdgeParam is actual-argument → formal-parameter flow; Via names
	// the call site, which is itself a producer statement.
	EdgeParam
	// EdgeReturn is return-value → call-result flow.
	EdgeReturn
	// EdgeControl is intraprocedural control dependence on a branch.
	EdgeControl
	// EdgeCallControl makes callee statements that always execute on
	// entry control dependent on the call sites of their method.
	EdgeCallControl
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeLocal:
		return "local"
	case EdgeBase:
		return "base"
	case EdgeHeap:
		return "heap"
	case EdgeParam:
		return "param"
	case EdgeReturn:
		return "return"
	case EdgeControl:
		return "control"
	case EdgeCallControl:
		return "call-control"
	}
	return "?"
}

// IsProducerFlow reports whether edges of kind k carry producer value
// flow (the edges a thin slice follows).
func (k EdgeKind) IsProducerFlow() bool {
	switch k {
	case EdgeLocal, EdgeHeap, EdgeParam, EdgeReturn:
		return true
	}
	return false
}

// IsControl reports whether k is a control dependence kind.
func (k EdgeKind) IsControl() bool {
	return k == EdgeControl || k == EdgeCallControl
}

// Node identifies one statement instance: an instruction in a
// particular call-graph context.
type Node int32

// NoNode is the absent-node sentinel (e.g. Dep.Via on non-param edges).
const NoNode Node = -1

// Dep is one incoming dependence of a node: the node depends on Src.
// Via is the call-site node mediating param flow (itself part of the
// producer chain), or NoNode.
type Dep struct {
	Src  Node
	Kind EdgeKind
	Via  Node
}

// Graph is the dependence graph, stored as in-edges per node.
type Graph struct {
	Prog *ir.Program
	Pts  *pointsto.Result

	// Truncated reports that construction stopped at the edge budget:
	// the node set is complete but some dependence edges are missing,
	// so slices over this graph may be under-approximate. LimitErr
	// carries the triggering *budget.ErrExhausted.
	Truncated bool
	LimitErr  error

	meter    *budget.Meter
	stop     error
	deps     [][]Dep
	mctxs    []*pointsto.MCtx
	base     map[*pointsto.MCtx]int32 // first node of each context
	nodeCtx  []*pointsto.MCtx         // dense: node → context (one entry per node)
	firstID  map[*ir.Method]int       // first instruction ID of each method
	numEdges int
	// callerNodes are the call-site nodes that may invoke a context.
	callerNodes map[*pointsto.MCtx][]Node
}

// NumNodes returns the number of statement instances (the paper's
// "SDG Statements": scalar statements across call-graph clones,
// without heap parameters).
func (g *Graph) NumNodes() int { return len(g.nodeCtx) }

// NumEdges returns the number of dependence edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Deps returns the dependences of node n.
func (g *Graph) Deps(n Node) []Dep { return g.deps[n] }

// CtxOf returns the call-graph context of n.
func (g *Graph) CtxOf(n Node) *pointsto.MCtx { return g.nodeCtx[n] }

// InstrOf returns the instruction of n.
func (g *Graph) InstrOf(n Node) ir.Instr {
	mc := g.nodeCtx[n]
	local := int(n) - int(g.base[mc])
	return g.Prog.InstrByID(g.firstID[mc.Method] + local)
}

// NodeOf returns the node for an instruction in a specific context.
func (g *Graph) NodeOf(mc *pointsto.MCtx, ins ir.Instr) Node {
	return Node(int(g.base[mc]) + ins.ID() - g.firstID[ins.Block().Method])
}

// NodesOf returns all statement instances of an instruction (one per
// context its method was analyzed under).
func (g *Graph) NodesOf(ins ir.Instr) []Node {
	m := ins.Block().Method
	var out []Node
	for _, mc := range g.Pts.MCtxsOf(m) {
		out = append(out, g.NodeOf(mc, ins))
	}
	return out
}

// Reachable reports whether m has at least one analyzed context.
func (g *Graph) Reachable(m *ir.Method) bool {
	return len(g.Pts.MCtxsOf(m)) > 0
}

// CallerNodes returns the call-site nodes that may invoke context mc.
func (g *Graph) CallerNodes(mc *pointsto.MCtx) []Node { return g.callerNodes[mc] }

type heapAccess struct {
	node Node
	objs []int // sorted object IDs of the base pointer in this context
}

// Build constructs the dependence graph over the contexts reachable in
// pts, unbounded.
func Build(prog *ir.Program, pts *pointsto.Result) *Graph {
	g, err := BuildBudget(prog, pts, nil)
	if err != nil {
		// Unreachable: a nil budget cannot be canceled or exhausted.
		panic(err)
	}
	return g
}

// BuildBudget constructs the dependence graph under a budget
// (PhaseSDG, one step per instruction scanned or edge added). A
// canceled context or passed deadline aborts with *budget.ErrCanceled;
// an exhausted step cap returns the partial graph flagged Truncated
// with a nil error — all nodes present, some edges missing.
func BuildBudget(prog *ir.Program, pts *pointsto.Result, b *budget.Budget) (*Graph, error) {
	g := &Graph{
		Prog:        prog,
		Pts:         pts,
		meter:       b.Phase(budget.PhaseSDG),
		base:        make(map[*pointsto.MCtx]int32),
		firstID:     make(map[*ir.Method]int),
		callerNodes: make(map[*pointsto.MCtx][]Node),
	}
	for _, m := range prog.Methods {
		first := -1
		m.Instrs(func(ins ir.Instr) {
			if first < 0 {
				first = ins.ID()
			}
		})
		g.firstID[m] = first
	}
	g.mctxs = pts.MCtxs()
	total := 0
	for _, mc := range g.mctxs {
		g.base[mc] = int32(total)
		n := 0
		mc.Method.Instrs(func(ir.Instr) { n++ })
		total += n
		for i := 0; i < n; i++ {
			g.nodeCtx = append(g.nodeCtx, mc)
		}
	}
	g.deps = make([][]Dep, total)

	// Heap access indexes, built per context so cloned container
	// methods keep their backing stores apart.
	fieldStores := make(map[string][]heapAccess)
	fieldLoads := make(map[string][]heapAccess)
	var elemStores, elemLoads, lenReads []heapAccess
	staticStores := make(map[string][]Node)
	staticLoads := make(map[string][]Node)

	for _, mc := range g.mctxs {
		ctx := mc
		objIDs := func(r *ir.Reg) []int {
			objs := pts.PointsToIn(r, ctx)
			ids := make([]int, len(objs))
			for i, o := range objs {
				ids[i] = o.ID
			}
			sort.Ints(ids)
			return ids
		}
		if g.stop != nil {
			break
		}
		mc.Method.Instrs(func(ins ir.Instr) {
			if !g.tick() {
				return
			}
			node := g.NodeOf(mc, ins)
			// Local/base def-use edges from operand definitions. Call
			// operands are excluded: argument flow reaches the callee's
			// formal parameters via EdgeParam, and the call node itself
			// only receives EdgeReturn flow — following the SDG shape,
			// where a call result does not directly depend on the
			// arguments in the caller.
			if _, isCall := ins.(*ir.Call); !isCall {
				uses := ins.Uses()
				roles := ins.UseRoles()
				for i, u := range uses {
					if u.Def == nil {
						continue
					}
					kind := EdgeLocal
					if roles[i] == ir.RoleBase {
						kind = EdgeBase
					}
					g.addDep(node, Dep{Src: g.NodeOf(mc, u.Def), Kind: kind, Via: NoNode})
				}
			}
			switch ins := ins.(type) {
			case *ir.SetField:
				fieldStores[ins.Field.QualifiedName()] = append(
					fieldStores[ins.Field.QualifiedName()], heapAccess{node, objIDs(ins.Obj)})
			case *ir.GetField:
				fieldLoads[ins.Field.QualifiedName()] = append(
					fieldLoads[ins.Field.QualifiedName()], heapAccess{node, objIDs(ins.Obj)})
			case *ir.ArrayStore:
				elemStores = append(elemStores, heapAccess{node, objIDs(ins.Arr)})
			case *ir.ArrayLoad:
				elemLoads = append(elemLoads, heapAccess{node, objIDs(ins.Arr)})
			case *ir.ArrayLen:
				lenReads = append(lenReads, heapAccess{node, objIDs(ins.Arr)})
			case *ir.SetStatic:
				staticStores[ins.Field.QualifiedName()] = append(staticStores[ins.Field.QualifiedName()], node)
			case *ir.GetStatic:
				staticLoads[ins.Field.QualifiedName()] = append(staticLoads[ins.Field.QualifiedName()], node)
			case *ir.Call:
				g.linkCall(mc, node, ins)
			}
		})
	}

	// Heap edges: store→load when the base points-to sets (in the
	// respective contexts) intersect. These pairings are the graph's
	// quadratic hot spot, so each candidate load ticks the budget.
	for fname, loads := range fieldLoads {
		if g.stop != nil {
			break
		}
		for _, ld := range loads {
			if !g.tick() {
				break
			}
			for _, st := range fieldStores[fname] {
				if intersects(ld.objs, st.objs) {
					g.addDep(ld.node, Dep{Src: st.node, Kind: EdgeHeap, Via: NoNode})
				}
			}
		}
	}
	for _, ld := range elemLoads {
		if !g.tick() {
			break
		}
		for _, st := range elemStores {
			if intersects(ld.objs, st.objs) {
				g.addDep(ld.node, Dep{Src: st.node, Kind: EdgeHeap, Via: NoNode})
			}
		}
	}
	// Array lengths flow from the allocation's length operand; the
	// allocation may live in another context (the object's heap
	// context names the allocating container context only indirectly,
	// so connect to every context instance of the allocation site).
	for _, lr := range lenReads {
		if g.stop != nil {
			break
		}
		seen := make(map[Node]bool)
		for _, id := range lr.objs {
			o := pts.Objects()[id]
			if !o.IsArray() {
				continue
			}
			for _, src := range g.NodesOf(o.Site) {
				if !seen[src] {
					seen[src] = true
					g.addDep(lr.node, Dep{Src: src, Kind: EdgeHeap, Via: NoNode})
				}
			}
		}
	}
	// Static fields are single global locations: every store reaches
	// every load of the same field.
	for fname, loads := range staticLoads {
		if g.stop != nil {
			break
		}
		for _, ld := range loads {
			for _, st := range staticStores[fname] {
				g.addDep(ld, Dep{Src: st, Kind: EdgeHeap, Via: NoNode})
			}
		}
	}

	// Control dependence edges (intraprocedural graphs are shared
	// across contexts; edges are added per context instance).
	cdgCache := make(map[*ir.Method]*cdg.Graph)
	for _, mc := range g.mctxs {
		if g.stop != nil {
			break
		}
		cg := cdgCache[mc.Method]
		if cg == nil {
			cg = cdg.Build(mc.Method)
			cdgCache[mc.Method] = cg
		}
		callers := g.callerNodes[mc]
		mc.Method.Instrs(func(ins ir.Instr) {
			node := g.NodeOf(mc, ins)
			for _, br := range cg.InstrDeps(ins) {
				if br != ins {
					g.addDep(node, Dep{Src: g.NodeOf(mc, br), Kind: EdgeControl, Via: NoNode})
				}
			}
			if cg.DependsOnEntry(ins) {
				for _, caller := range callers {
					g.addDep(node, Dep{Src: caller, Kind: EdgeCallControl, Via: NoNode})
				}
			}
		})
	}
	if g.stop != nil {
		if budget.IsCanceled(g.stop) {
			return nil, g.stop
		}
		g.Truncated = true
		g.LimitErr = g.stop
	}
	return g, nil
}

// tick spends one construction step; once the budget fails the graph
// stops growing (sticky), and Build interprets the violation.
func (g *Graph) tick() bool {
	if g.stop != nil {
		return false
	}
	if err := g.meter.Tick(); err != nil {
		g.stop = err
		return false
	}
	return true
}

func (g *Graph) addDep(to Node, d Dep) {
	if !g.tick() {
		return
	}
	g.deps[to] = append(g.deps[to], d)
	g.numEdges++
}

// linkCall adds parameter and return edges for every callee context of
// a call site in a caller context.
func (g *Graph) linkCall(caller *pointsto.MCtx, callNode Node, call *ir.Call) {
	for _, callee := range g.Pts.CalleesAt(call, caller) {
		g.callerNodes[callee] = append(g.callerNodes[callee], callNode)
		params := callee.Method.Params
		offset := 0
		if !callee.Method.Sig.Static {
			offset = 1
			if call.Recv != nil && call.Recv.Def != nil {
				g.addDep(g.NodeOf(callee, params[0]),
					Dep{Src: g.NodeOf(caller, call.Recv.Def), Kind: EdgeParam, Via: callNode})
			}
		}
		for i, arg := range call.Args {
			if i+offset >= len(params) {
				break
			}
			if arg.Def != nil {
				g.addDep(g.NodeOf(callee, params[i+offset]),
					Dep{Src: g.NodeOf(caller, arg.Def), Kind: EdgeParam, Via: callNode})
			}
		}
		if call.Dst != nil {
			callee.Method.Instrs(func(ins ir.Instr) {
				if ret, ok := ins.(*ir.Return); ok && ret.Val != nil {
					g.addDep(callNode, Dep{Src: g.NodeOf(callee, ret), Kind: EdgeReturn, Via: NoNode})
				}
			})
		}
	}
}

func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
