package sdg_test

// Round-trip equivalence sweep over the whole artifact chain. Each
// artifact is decoded against the *decoded* versions of its upstream
// artifacts — exactly how the disk cache rehydrates after a restart —
// and compared against the freshly built one with the strongest
// available oracle: byte-identical listings for IR (ir.Sprint),
// fingerprint identity for the SDG (sdg.Fingerprint), and canonical
// re-encoding equality for the points-to, CHA, and mod-ref results.

import (
	"bytes"
	"testing"

	"thinslice/internal/analysis/cha"
	"thinslice/internal/analysis/modref"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/lang/types"
	"thinslice/internal/papercases"
	"thinslice/internal/randprog"
	"thinslice/internal/sdg"
)

func chainSources() map[string]map[string]string {
	return map[string]map[string]string{
		"firstnames": {papercases.FirstNamesFile: papercases.FirstNames},
		"toy":        {papercases.ToyFile: papercases.Toy},
		"filebug":    {papercases.FileBugFile: papercases.FileBug},
		"toughcast":  {papercases.ToughCastFile: papercases.ToughCast},
	}
}

// roundTripChain builds every artifact fresh, round-trips each through
// its codec (decoding against the decoded upstreams), and compares.
func roundTripChain(t *testing.T, info *types.Info) {
	t.Helper()
	prog := ir.Lower(info)
	if len(prog.Diags) > 0 {
		t.Fatalf("lowering diagnostics: %v", prog.Diags)
	}

	irData, err := ir.EncodeProgram(prog)
	if err != nil {
		t.Fatalf("EncodeProgram: %v", err)
	}
	prog2, err := ir.DecodeProgram(irData, info)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	if ir.Sprint(prog) != ir.Sprint(prog2) {
		t.Fatal("decoded IR listing differs from fresh lowering")
	}

	cfg := pointsto.Config{ObjSensContainers: true, ContainerClasses: prelude.ContainerClasses}
	pts, err := pointsto.Analyze(prog, cfg)
	if err != nil {
		t.Fatalf("pointsto.Analyze: %v", err)
	}
	ptsData, err := pointsto.EncodeResult(pts)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	pts2, err := pointsto.DecodeResult(ptsData, prog2)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	ptsData2, err := pointsto.EncodeResult(pts2)
	if err != nil {
		t.Fatalf("re-encode pts: %v", err)
	}
	if !bytes.Equal(ptsData, ptsData2) {
		t.Fatal("points-to result did not round-trip to identical bytes")
	}

	g := sdg.Build(prog, pts)
	sdgData, err := sdg.EncodeGraph(g)
	if err != nil {
		t.Fatalf("EncodeGraph: %v", err)
	}
	g2, err := sdg.DecodeGraph(sdgData, prog2, pts2)
	if err != nil {
		t.Fatalf("DecodeGraph: %v", err)
	}
	if g.Fingerprint() != g2.Fingerprint() {
		t.Fatal("decoded SDG fingerprint differs from fresh build")
	}

	cg := cha.Build(prog, pts.Entries())
	chaData, err := cha.EncodeCallGraph(cg)
	if err != nil {
		t.Fatalf("EncodeCallGraph: %v", err)
	}
	cg2, err := cha.DecodeCallGraph(chaData, prog2)
	if err != nil {
		t.Fatalf("DecodeCallGraph: %v", err)
	}
	chaData2, err := cha.EncodeCallGraph(cg2)
	if err != nil {
		t.Fatalf("re-encode cha: %v", err)
	}
	if !bytes.Equal(chaData, chaData2) {
		t.Fatal("CHA call graph did not round-trip to identical bytes")
	}
	if cg.NumReachable() != cg2.NumReachable() {
		t.Fatalf("CHA reachable count %d != %d", cg.NumReachable(), cg2.NumReachable())
	}

	mr := modref.Compute(prog, pts)
	mrData, err := modref.EncodeResult(mr)
	if err != nil {
		t.Fatalf("modref.EncodeResult: %v", err)
	}
	mr2, err := modref.DecodeResult(mrData, prog2, pts2)
	if err != nil {
		t.Fatalf("modref.DecodeResult: %v", err)
	}
	mrData2, err := modref.EncodeResult(mr2)
	if err != nil {
		t.Fatalf("re-encode modref: %v", err)
	}
	if !bytes.Equal(mrData, mrData2) {
		t.Fatal("mod-ref result did not round-trip to identical bytes")
	}
}

func TestArtifactChainRoundTripPapercases(t *testing.T) {
	for name, srcs := range chainSources() {
		t.Run(name, func(t *testing.T) {
			info, err := loader.Load(srcs)
			if err != nil {
				t.Fatal(err)
			}
			roundTripChain(t, info)
		})
	}
}

func TestArtifactChainRoundTripRandprog(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 20
	}
	for seed := 0; seed < n; seed++ {
		info, err := loader.Load(randprog.Generate(int64(seed), randprog.DefaultConfig))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		roundTripChain(t, info)
	}
}

// TestSDGDecodeRejectsCorruptPayloads pins that the downstream decoders
// never panic on corrupt bytes — the diskstore converts their errors
// into quarantines.
func TestSDGDecodeRejectsCorruptPayloads(t *testing.T) {
	info, err := loader.Load(chainSources()["toy"])
	if err != nil {
		t.Fatal(err)
	}
	prog := ir.Lower(info)
	pts, err := pointsto.Analyze(prog, pointsto.Config{ObjSensContainers: true, ContainerClasses: prelude.ContainerClasses})
	if err != nil {
		t.Fatal(err)
	}
	data, err := sdg.EncodeGraph(sdg.Build(prog, pts))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 5 {
		if _, err := sdg.DecodeGraph(data[:n], prog, pts); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	for i := 0; i < len(data); i += 3 {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x20
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bit flip at byte %d panicked: %v", i, r)
				}
			}()
			sdg.DecodeGraph(mutated, prog, pts)
		}()
	}
}
