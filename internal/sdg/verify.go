package sdg

import (
	"fmt"

	"thinslice/internal/ir"
)

// VerifyGraph checks the structural invariants of a finalized
// dependence graph — the properties every consumer (the slicers, the
// IFDS solver, the codec) silently relies on:
//
//   - CSR well-formedness: the offset array has NumNodes+1 entries,
//     starts at 0, is monotone non-decreasing, and its last entry
//     equals the edge count;
//   - node identity: every node has a context, context base ranges
//     partition [0, NumNodes) exactly, and NodeOf(CtxOf(n), InstrOf(n))
//     round-trips to n;
//   - edge endpoints: every Dep.Src is in bounds; Via is set exactly on
//     EdgeParam edges and names a call-site node; intraprocedural kinds
//     (local, base, control) stay within one context; EdgeParam targets
//     a formal parameter, EdgeReturn links a return statement to a call,
//     and EdgeCallControl sources are call sites.
//
// It returns every violation found, or nil for a well-formed graph.
func VerifyGraph(g *Graph) []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	n := g.NumNodes()
	if len(g.csrOff) != n+1 {
		report("csr: offset array has %d entries for %d nodes, want %d", len(g.csrOff), n, n+1)
		return errs // the per-node walk below would be out of bounds
	}
	if g.csrOff[0] != 0 {
		report("csr: offsets start at %d, want 0", g.csrOff[0])
	}
	for i := 1; i <= n; i++ {
		if g.csrOff[i] < g.csrOff[i-1] {
			report("csr: offsets not monotone at node %d: %d < %d", i, g.csrOff[i], g.csrOff[i-1])
			return errs
		}
	}
	if int(g.csrOff[n]) != len(g.csrDeps) {
		report("csr: final offset %d != %d stored deps", g.csrOff[n], len(g.csrDeps))
	}
	if g.numEdges != len(g.csrDeps) {
		report("csr: NumEdges %d != %d stored deps", g.numEdges, len(g.csrDeps))
	}

	// Context base ranges must partition [0, NumNodes) and agree with
	// the dense node→context table and the node numbering arithmetic.
	covered := 0
	for _, mc := range g.mctxs {
		base := int(g.base[mc])
		size := 0
		mc.Method.Instrs(func(ir.Instr) { size++ })
		if base < 0 || base+size > n {
			report("context %v: node range [%d, %d) outside [0, %d)", mc, base, base+size, n)
			continue
		}
		covered += size
		for i := 0; i < size; i++ {
			if g.nodeCtx[base+i] != mc {
				report("node %d: in the base range of context %v but mapped to %v", base+i, mc, g.nodeCtx[base+i])
				break
			}
		}
	}
	if covered != n {
		report("context base ranges cover %d nodes, graph has %d", covered, n)
	}
	for i := 0; i < n; i++ {
		node := Node(i)
		mc := g.CtxOf(node)
		if mc == nil {
			report("node %d has no context", i)
			continue
		}
		ins := g.InstrOf(node)
		if ins == nil {
			report("node %d has no instruction", i)
			continue
		}
		if rt := g.NodeOf(mc, ins); rt != node {
			report("node %d: NodeOf(CtxOf, InstrOf) round-trips to %d", i, rt)
		}
	}
	if len(errs) > 0 {
		return errs // endpoint checks below assume sane node identity
	}

	inBounds := func(v Node) bool { return v >= 0 && int(v) < n }
	for i := 0; i < n; i++ {
		node := Node(i)
		ins := g.InstrOf(node)
		for _, d := range g.Deps(node) {
			if !inBounds(d.Src) {
				report("node %d (%s): dep source %d out of bounds", i, ins, d.Src)
				continue
			}
			if (d.Via != NoNode) != (d.Kind == EdgeParam) {
				report("node %d (%s): Via %d on %s edge (set exactly on param edges)", i, ins, d.Via, d.Kind)
				continue
			}
			switch d.Kind {
			case EdgeLocal, EdgeBase, EdgeControl:
				if g.CtxOf(d.Src) != g.CtxOf(node) {
					report("node %d (%s): intraprocedural %s edge crosses contexts (from node %d)", i, ins, d.Kind, d.Src)
				}
			case EdgeParam:
				if !inBounds(d.Via) {
					report("node %d (%s): param edge Via %d out of bounds", i, ins, d.Via)
					continue
				}
				if _, ok := ins.(*ir.Param); !ok {
					report("node %d (%s): param edge into a non-parameter", i, ins)
				}
				if _, ok := g.InstrOf(d.Via).(*ir.Call); !ok {
					report("node %d (%s): param edge Via %d is not a call site (%s)", i, ins, d.Via, g.InstrOf(d.Via))
				}
				if g.CtxOf(d.Src) != g.CtxOf(d.Via) {
					report("node %d (%s): param edge source and call site are in different contexts", i, ins)
				}
			case EdgeReturn:
				if _, ok := ins.(*ir.Call); !ok {
					report("node %d (%s): return edge into a non-call", i, ins)
				}
				if _, ok := g.InstrOf(d.Src).(*ir.Return); !ok {
					report("node %d (%s): return edge from a non-return (%s)", i, ins, g.InstrOf(d.Src))
				}
			case EdgeCallControl:
				if _, ok := g.InstrOf(d.Src).(*ir.Call); !ok {
					report("node %d (%s): call-control edge from a non-call (%s)", i, ins, g.InstrOf(d.Src))
				}
			case EdgeHeap:
				// Heap edges may cross contexts freely; bounds were
				// checked above.
			default:
				report("node %d (%s): unknown edge kind %d", i, ins, d.Kind)
			}
		}
	}
	return errs
}
