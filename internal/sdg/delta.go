package sdg

// Incremental construction (PR 9). A dependence graph is three layers:
// a node scaffolding fixed by (program, points-to result), per-method
// structure that depends only on a method's body (intraprocedural
// def-use edges, control dependences, the positions of its heap
// accesses and call sites), and global structure derived from the
// points-to result (call linking, heap pairing, statics, array
// lengths). BuildDelta caches the middle layer as base-relative
// templates keyed by method qualified name: an edit re-derives
// templates only for the changed methods, replays every context off
// its template, and recomputes the points-to-derived layer from the
// new (canonicalized) result.
//
// Byte-identity with a cold Build holds because a node's in-edge order
// is its emission order within a fixed phase sequence, and each in-edge
// category of a node has exactly one emitter: local/base edges come
// from the node's own instruction (template order = EachUse order),
// param/return edges arrive in (caller context, call instruction,
// canonical callee) order, heap edges in heap-index append order
// (context, instruction), and control edges from the node's own
// instruction's CDG rows. The replay walks contexts in the same
// canonical order as scanCtx, so every per-node sequence — and
// therefore Fingerprint and the codec payload — is preserved.

import (
	"thinslice/internal/analysis/cdg"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/ir"
)

// tmplEdge is one base-relative dependence: node (base + to) depends on
// (base + src).
type tmplEdge struct {
	to, src int32
	kind    EdgeKind
}

// methodTemplate is the context-independent derivation state of one
// method body. All offsets are relative to the method's first
// instruction ID, so a template survives the instruction renumbering
// that editing *other* files causes.
type methodTemplate struct {
	size  int        // instruction count (guards against stale reuse)
	uses  []tmplEdge // local/base def-use edges, in instruction order
	calls []int32    // offsets of call instructions
	heap  []int32    // offsets of heap-access instructions
	ctrl  []tmplEdge // intraprocedural control dependences
	entry []int32    // offsets of instructions control dependent on entry
}

// BuildState carries the per-method templates of one build so the next
// edit can reuse them. States are cheap to hold (flat int slices, no
// pointers into the program they were derived from).
type BuildState struct {
	templates map[string]*methodTemplate
}

// DeltaStats reports how much of a BuildDelta run was reused.
type DeltaStats struct {
	// TemplatesReused and TemplatesBuilt partition the distinct reachable
	// methods of the new program.
	TemplatesReused int
	TemplatesBuilt  int
	// Ctxs is the number of contexts replayed (nodes come from every
	// context regardless of reuse; only the per-method derivation work is
	// saved).
	Ctxs int
}

// newMethodTemplate derives m's template: one body walk plus one CDG
// construction, mirroring exactly what scanCtx and controlCtx emit per
// context.
func newMethodTemplate(m *ir.Method, first int) *methodTemplate {
	t := &methodTemplate{}
	cg := cdg.Build(m)
	m.Instrs(func(ins ir.Instr) {
		local := int32(ins.ID() - first)
		t.size++
		if _, isCall := ins.(*ir.Call); isCall {
			t.calls = append(t.calls, local)
		} else {
			ins.EachUse(func(u *ir.Reg, role ir.Role) {
				if u.Def == nil {
					return
				}
				kind := EdgeLocal
				if role == ir.RoleBase {
					kind = EdgeBase
				}
				t.uses = append(t.uses, tmplEdge{to: local, src: int32(u.Def.ID() - first), kind: kind})
			})
			switch ins.(type) {
			case *ir.SetField, *ir.GetField, *ir.ArrayStore, *ir.ArrayLoad,
				*ir.ArrayLen, *ir.SetStatic, *ir.GetStatic:
				t.heap = append(t.heap, local)
			}
		}
		for _, br := range cg.InstrDeps(ins) {
			if br != ins {
				t.ctrl = append(t.ctrl, tmplEdge{to: local, src: int32(br.ID() - first), kind: EdgeControl})
			}
		}
		if cg.DependsOnEntry(ins) {
			t.entry = append(t.entry, local)
		}
	})
	return t
}

// replayScan re-emits one context's scan phase off its method template:
// use edges, call links, and heap-access collection, in the same
// per-node order scanCtx produces.
func (g *Graph) replayScan(mc *pointsto.MCtx, t *methodTemplate, em scanEmit) {
	base := int(g.base[mc])
	first := g.firstID[mc.Method]
	for _, e := range t.uses {
		em.dep(Node(base+int(e.to)), Dep{Src: Node(base + int(e.src)), Kind: e.kind, Via: NoNode})
	}
	for _, local := range t.calls {
		call := g.Prog.InstrByID(first + int(local)).(*ir.Call)
		g.linkCall(mc, Node(base+int(local)), call, em)
	}
	h := em.heap
	if h == nil {
		return
	}
	objIDs := func(r *ir.Reg) []int {
		return g.Pts.PointsToIDsIn(nil, r, mc)
	}
	for _, local := range t.heap {
		node := Node(base + int(local))
		switch ins := g.Prog.InstrByID(first + int(local)).(type) {
		case *ir.SetField:
			h.fieldStores[ins.Field.QualifiedName()] = append(
				h.fieldStores[ins.Field.QualifiedName()], newHeapAccess(node, objIDs(ins.Obj)))
		case *ir.GetField:
			h.fieldLoads[ins.Field.QualifiedName()] = append(
				h.fieldLoads[ins.Field.QualifiedName()], newHeapAccess(node, objIDs(ins.Obj)))
		case *ir.ArrayStore:
			h.elemStores = append(h.elemStores, newHeapAccess(node, objIDs(ins.Arr)))
		case *ir.ArrayLoad:
			h.elemLoads = append(h.elemLoads, newHeapAccess(node, objIDs(ins.Arr)))
		case *ir.ArrayLen:
			h.lenReads = append(h.lenReads, heapAccess{node: node, objs: objIDs(ins.Arr)})
		case *ir.SetStatic:
			h.staticStores[ins.Field.QualifiedName()] = append(h.staticStores[ins.Field.QualifiedName()], node)
		case *ir.GetStatic:
			h.staticLoads[ins.Field.QualifiedName()] = append(h.staticLoads[ins.Field.QualifiedName()], node)
		}
	}
}

// replayCtrl re-emits one context's control dependences off the
// template. Per node, its EdgeControl rows precede its EdgeCallControl
// rows exactly as controlCtx interleaves them (both come from the
// node's own instruction, and phases are stable-sorted).
func (g *Graph) replayCtrl(mc *pointsto.MCtx, t *methodTemplate, add func(to Node, d Dep)) {
	base := int(g.base[mc])
	for _, e := range t.ctrl {
		add(Node(base+int(e.to)), Dep{Src: Node(base + int(e.src)), Kind: EdgeControl, Via: NoNode})
	}
	callers := g.callerNodes[mc]
	for _, local := range t.entry {
		node := Node(base + int(local))
		for _, caller := range callers {
			add(node, Dep{Src: caller, Kind: EdgeCallControl, Via: NoNode})
		}
	}
}

// BuildDelta constructs the dependence graph over prog/pts, reusing
// prev's per-method templates for every method whose qualified name is
// not in changed. A nil prev (or empty template set) degrades to a full
// sequential build that additionally returns a complete BuildState —
// the cold path of an incremental session. The result is byte-identical
// (Fingerprint, EncodeGraph payload) to Build(prog, pts).
//
// changed must contain the qualified name of every method whose body
// differs from the build prev describes — the depgraph frontier plus
// removed/added units. A template whose recorded instruction count
// disagrees with the new body is rebuilt regardless, as a stale-input
// guard. BuildDelta is unmetered: incremental rebuilds back a live
// session, where truncation would poison every later delta.
func BuildDelta(prog *ir.Program, pts *pointsto.Result, prev *BuildState, changed []string) (*Graph, *BuildState, DeltaStats) {
	var b *budget.Budget
	g := &Graph{
		Prog:        prog,
		Pts:         pts,
		bud:         b,
		meter:       b.Phase(budget.PhaseSDG),
		base:        make(map[*pointsto.MCtx]int32),
		firstID:     make(map[*ir.Method]int),
		callerNodes: make(map[*pointsto.MCtx][]Node),
	}
	g.returns = make(map[*ir.Method][]*ir.Return, len(prog.Methods))
	methodSize := make(map[*ir.Method]int, len(prog.Methods))
	for _, m := range prog.Methods {
		first, n := -1, 0
		var rets []*ir.Return
		m.Instrs(func(ins ir.Instr) {
			if first < 0 {
				first = ins.ID()
			}
			n++
			if ret, ok := ins.(*ir.Return); ok {
				rets = append(rets, ret)
			}
		})
		g.firstID[m] = first
		g.returns[m] = rets
		methodSize[m] = n
	}
	g.mctxs = pts.MCtxs()
	total := 0
	for _, mc := range g.mctxs {
		g.base[mc] = int32(total)
		total += methodSize[mc.Method]
	}
	g.nodeCtx = make([]*pointsto.MCtx, 0, total)
	for _, mc := range g.mctxs {
		for i := 0; i < methodSize[mc.Method]; i++ {
			g.nodeCtx = append(g.nodeCtx, mc)
		}
	}

	changedSet := make(map[string]bool, len(changed))
	for _, q := range changed {
		changedSet[q] = true
	}
	var stats DeltaStats
	st := &BuildState{templates: make(map[string]*methodTemplate)}
	tmplOf := make(map[*ir.Method]*methodTemplate, len(prog.Methods))
	template := func(m *ir.Method) *methodTemplate {
		if t, ok := tmplOf[m]; ok {
			return t
		}
		q := m.Sig.QualifiedName()
		var t *methodTemplate
		if prev != nil && !changedSet[q] {
			t = prev.templates[q]
		}
		if t != nil && t.size == methodSize[m] {
			stats.TemplatesReused++
		} else {
			t = newMethodTemplate(m, g.firstID[m])
			stats.TemplatesBuilt++
		}
		tmplOf[m] = t
		st.templates[q] = t
		return t
	}

	// Scan phase: replay every context in canonical order. Workers are
	// unnecessary here — the expensive per-method derivation is exactly
	// what the templates skip.
	h := newHeapIndex()
	em := scanEmit{
		tick: g.tick,
		dep:  g.addDep,
		caller: func(callee *pointsto.MCtx, n Node) {
			g.callerNodes[callee] = append(g.callerNodes[callee], n)
		},
		heap: h,
	}
	for _, mc := range g.mctxs {
		g.replayScan(mc, template(mc.Method), em)
	}
	stats.Ctxs = len(g.mctxs)

	// Points-to-derived phase: heap pairing, array lengths, statics.
	g.emitHeap(h, g.tick, g.addDep)

	// Control phase, off the cached CDG rows.
	for _, mc := range g.mctxs {
		g.replayCtrl(mc, tmplOf[mc.Method], g.addDep)
	}
	g.finalize()
	return g, st, stats
}
