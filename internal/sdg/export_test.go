package sdg

// ForceParallelForTest lowers the sequential-fallback work threshold
// to zero so equivalence tests exercise the parallel path on programs
// far below the production cutoff. Returns a restore func.
func ForceParallelForTest() (restore func()) {
	old := parallelMinNodes
	parallelMinNodes = 0
	return func() { parallelMinNodes = old }
}

// PartitionCtxsForTest exposes the size-aware context partitioner.
func PartitionCtxsForTest(ctxSize []int, workers int) [][2]int {
	var out [][2]int
	for _, r := range partitionCtxs(ctxSize, workers) {
		out = append(out, [2]int{r.lo, r.hi})
	}
	return out
}
