package sdg

// ForceParallelForTest lowers the sequential-fallback work threshold
// to zero so equivalence tests exercise the parallel path on programs
// far below the production cutoff. Returns a restore func.
func ForceParallelForTest() (restore func()) {
	old := parallelMinNodes
	parallelMinNodes = 0
	return func() { parallelMinNodes = old }
}

// CorruptForTest applies one named structural corruption to a
// finalized graph, for the VerifyGraph oracle test. Returns false for
// an unknown name or a graph too small to corrupt that way.
func CorruptForTest(g *Graph, name string) bool {
	switch name {
	case "offset-nonmonotone":
		if len(g.csrOff) < 2 {
			return false
		}
		g.csrOff[len(g.csrOff)-1] = g.csrOff[len(g.csrOff)-2] - 1
		return true
	case "dep-out-of-bounds":
		if len(g.csrDeps) == 0 {
			return false
		}
		g.csrDeps[0].Src = Node(g.NumNodes())
		return true
	case "via-on-local":
		for i := range g.csrDeps {
			if g.csrDeps[i].Kind == EdgeLocal {
				g.csrDeps[i].Via = 0
				return true
			}
		}
		return false
	case "context-dropped":
		if len(g.nodeCtx) == 0 {
			return false
		}
		g.nodeCtx[len(g.nodeCtx)-1] = nil
		return true
	}
	return false
}

// PartitionCtxsForTest exposes the size-aware context partitioner.
func PartitionCtxsForTest(ctxSize []int, workers int) [][2]int {
	var out [][2]int
	for _, r := range partitionCtxs(ctxSize, workers) {
		out = append(out, [2]int{r.lo, r.hi})
	}
	return out
}
