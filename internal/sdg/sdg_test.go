package sdg_test

import (
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
	"thinslice/internal/sdg"
)

func analyze(t *testing.T, src string) *analyzer.Analysis {
	t.Helper()
	a, err := analyzer.Analyze(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// depsOfKind unions the k-kind dependences of every context instance
// of ins.
func depsOfKind(g *sdg.Graph, ins ir.Instr, k sdg.EdgeKind) []sdg.Dep {
	var out []sdg.Dep
	for _, n := range g.NodesOf(ins) {
		for _, d := range g.Deps(n) {
			if d.Kind == k {
				out = append(out, d)
			}
		}
	}
	return out
}

// srcInstr resolves a dependence source to its instruction.
func srcInstr(g *sdg.Graph, d sdg.Dep) ir.Instr { return g.InstrOf(d.Src) }

func find[T ir.Instr](a *analyzer.Analysis, qname string) []T {
	var out []T
	for _, m := range a.Prog.Methods {
		if m.Name() != qname {
			continue
		}
		m.Instrs(func(ins ir.Instr) {
			if x, ok := ins.(T); ok {
				out = append(out, x)
			}
		})
	}
	return out
}

func TestLocalAndBaseEdges(t *testing.T) {
	a := analyze(t, `
		class Box { Object v; Box() { } }
		class Main {
			static void main() {
				Box b = new Box();
				b.v = new Object();
				print(b.v);
			}
		}
	`)
	g := a.Graph
	gets := find[*ir.GetField](a, "Main.main")
	if len(gets) != 1 {
		t.Fatalf("got %d GetField", len(gets))
	}
	if len(depsOfKind(g, gets[0], sdg.EdgeBase)) != 1 {
		t.Error("GetField must have one base edge (to the Copy of b)")
	}
	heap := depsOfKind(g, gets[0], sdg.EdgeHeap)
	if len(heap) != 1 {
		t.Fatalf("GetField must have one heap edge, got %d", len(heap))
	}
	if _, ok := srcInstr(g, heap[0]).(*ir.SetField); !ok {
		t.Errorf("heap edge source is %T", srcInstr(g, heap[0]))
	}
}

func TestHeapEdgesRespectAliasing(t *testing.T) {
	a := analyze(t, `
		class Box { Object v; Box() { } }
		class Main {
			static void main() {
				Box b1 = new Box();
				Box b2 = new Box();
				b1.v = new Object();
				b2.v = new Object();
				print(b1.v);
			}
		}
	`)
	gets := find[*ir.GetField](a, "Main.main")
	heap := depsOfKind(a.Graph, gets[0], sdg.EdgeHeap)
	if len(heap) != 1 {
		t.Fatalf("non-aliased stores must not produce heap edges: got %d", len(heap))
	}
}

func TestParamEdgesCarryVia(t *testing.T) {
	a := analyze(t, `
		class Util { static int id(int x) { return x; } }
		class Main {
			static void main() {
				int v = inputInt();
				print(Util.id(v));
			}
		}
	`)
	params := find[*ir.Param](a, "Util.id")
	if len(params) != 1 {
		t.Fatalf("got %d params", len(params))
	}
	pdeps := depsOfKind(a.Graph, params[0], sdg.EdgeParam)
	if len(pdeps) != 1 || pdeps[0].Via == sdg.NoNode {
		t.Fatalf("param edge missing or lacks Via: %+v", pdeps)
	}
}

func TestReturnEdges(t *testing.T) {
	a := analyze(t, `
		class Util { static int id(int x) { return x; } }
		class Main {
			static void main() {
				print(Util.id(1));
			}
		}
	`)
	calls := find[*ir.Call](a, "Main.main")
	var target *ir.Call
	for _, c := range calls {
		if c.Callee.Name == "id" {
			target = c
		}
	}
	rdeps := depsOfKind(a.Graph, target, sdg.EdgeReturn)
	if len(rdeps) != 1 {
		t.Fatalf("call must have one return edge, got %d", len(rdeps))
	}
	if _, ok := srcInstr(a.Graph, rdeps[0]).(*ir.Return); !ok {
		t.Errorf("return edge source is %T", srcInstr(a.Graph, rdeps[0]))
	}
}

func TestCallNodeHasNoLocalArgEdges(t *testing.T) {
	a := analyze(t, `
		class Util { static int pick(int x, int y) { return x; } }
		class Main {
			static void main() {
				int p = inputInt();
				int q = inputInt();
				print(Util.pick(p, q));
			}
		}
	`)
	calls := find[*ir.Call](a, "Main.main")
	var target *ir.Call
	for _, c := range calls {
		if c.Callee.Name == "pick" {
			target = c
		}
	}
	if deps := depsOfKind(a.Graph, target, sdg.EdgeLocal); len(deps) != 0 {
		t.Fatalf("call node must not have local arg edges, got %d", len(deps))
	}
}

func TestControlEdges(t *testing.T) {
	a := analyze(t, `
		class Main {
			static void main() {
				if (inputInt() > 0) {
					print(1);
				}
			}
		}
	`)
	prints := find[*ir.Print](a, "Main.main")
	ctrl := depsOfKind(a.Graph, prints[0], sdg.EdgeControl)
	if len(ctrl) != 1 {
		t.Fatalf("print must have one control edge, got %d", len(ctrl))
	}
	if _, ok := srcInstr(a.Graph, ctrl[0]).(*ir.If); !ok {
		t.Errorf("control source is %T", srcInstr(a.Graph, ctrl[0]))
	}
}

func TestCallControlEdges(t *testing.T) {
	a := analyze(t, `
		class Util { static void log() { print(1); } }
		class Main {
			static void main() {
				Util.log();
			}
		}
	`)
	prints := find[*ir.Print](a, "Util.log")
	cc := depsOfKind(a.Graph, prints[0], sdg.EdgeCallControl)
	if len(cc) != 1 {
		t.Fatalf("entry-dependent callee stmt must have call-control edge, got %d", len(cc))
	}
	if _, ok := srcInstr(a.Graph, cc[0]).(*ir.Call); !ok {
		t.Errorf("call-control source is %T", srcInstr(a.Graph, cc[0]))
	}
}

func TestStaticFieldHeapEdges(t *testing.T) {
	a := analyze(t, `
		class G { static int x; }
		class Main {
			static void main() {
				G.x = 1;
				print(G.x);
			}
		}
	`)
	gets := find[*ir.GetStatic](a, "Main.main")
	heap := depsOfKind(a.Graph, gets[0], sdg.EdgeHeap)
	if len(heap) != 1 {
		t.Fatalf("static read needs one heap edge, got %d", len(heap))
	}
}

func TestArrayLenEdgeToAllocation(t *testing.T) {
	a := analyze(t, `
		class Main {
			static void main() {
				int[] x = new int[7];
				print(x.length);
			}
		}
	`)
	lens := find[*ir.ArrayLen](a, "Main.main")
	heap := depsOfKind(a.Graph, lens[0], sdg.EdgeHeap)
	if len(heap) != 1 {
		t.Fatalf("length read needs one heap edge, got %d", len(heap))
	}
	if _, ok := srcInstr(a.Graph, heap[0]).(*ir.NewArray); !ok {
		t.Errorf("length edge source is %T", srcInstr(a.Graph, heap[0]))
	}
}

func TestGraphCountsAndReachability(t *testing.T) {
	a := analyze(t, papercases.FirstNames)
	g := a.Graph
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty graph")
	}
	reached := 0
	for _, m := range a.Prog.Methods {
		if g.Reachable(m) {
			reached++
		}
	}
	if reached == 0 || reached == len(a.Prog.Methods) {
		t.Errorf("reachability should be a strict subset: %d/%d", reached, len(a.Prog.Methods))
	}
}

func TestObjSensReducesHeapEdges(t *testing.T) {
	src := `
		class Main {
			static void main() {
				Vector v1 = new Vector();
				Vector v2 = new Vector();
				v1.add("a");
				v2.add("b");
				print((string) v1.get(0));
				print((string) v2.get(0));
			}
		}
	`
	aSens, err := analyzer.Analyze(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatal(err)
	}
	aNo, err := analyzer.Analyze(map[string]string{"t.mj": src}, analyzer.WithObjSens(false))
	if err != nil {
		t.Fatal(err)
	}
	// Cloned container contexts mean more nodes with object
	// sensitivity, but per-node heap deps stay apart: the thin slice
	// from v1's read reaches "a" and not "b". Without it, both leak in.
	sliceLiterals := func(a *analyzer.Analysis) map[string]bool {
		var seed ir.Instr
		for _, m := range a.Prog.Methods {
			if m.Name() != "Main.main" {
				continue
			}
			m.Instrs(func(ins ir.Instr) {
				if p, ok := ins.(*ir.Print); ok && seed == nil {
					seed = p
				}
			})
		}
		sl := a.ThinSlicer().Slice(seed)
		out := map[string]bool{}
		for _, ins := range sl.Instrs() {
			if c, ok := ins.(*ir.ConstStr); ok {
				out[c.Val] = true
			}
		}
		return out
	}
	withSens := sliceLiterals(aSens)
	if !withSens["a"] || withSens["b"] {
		t.Errorf("objsens thin slice literals wrong: %v", withSens)
	}
	without := sliceLiterals(aNo)
	if !without["a"] || !without["b"] {
		t.Errorf("noobjsens thin slice should merge both literals: %v", without)
	}
	if aSens.Graph.NumNodes() <= aNo.Graph.NumNodes() {
		t.Errorf("cloning should increase SDG nodes: %d vs %d",
			aSens.Graph.NumNodes(), aNo.Graph.NumNodes())
	}
}

func TestCallersOf(t *testing.T) {
	a := analyze(t, `
		class Util { static void f() { } }
		class Main {
			static void main() {
				Util.f();
				Util.f();
			}
		}
	`)
	var util *ir.Method
	for _, m := range a.Prog.Methods {
		if m.Name() == "Util.f" {
			util = m
		}
	}
	total := 0
	for _, mc := range a.Pts.MCtxsOf(util) {
		total += len(a.Graph.CallerNodes(mc))
	}
	if total != 2 {
		t.Fatalf("got %d caller nodes, want 2", total)
	}
}
