package sdg

// Persistent encoding of a Graph (package artifact's "sdg" payload).
// Node numbering is fully determined by the program and the points-to
// result (methods × contexts, in MCtx ID order), so the payload stores
// only what Build computes on top of that scaffolding: each node's
// ordered dependence list and the per-context caller-node lists.
// DecodeGraph rebuilds the scaffolding exactly as BuildWorkers does and
// fills in the edges, so a decoded graph fingerprints identically to
// the one Build produced.

import (
	"fmt"

	"thinslice/internal/artifact"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/ir"
)

// EncodeGraph returns the persistent payload for g. Truncated graphs
// are missing edges and are never cached, so encoding one is an error.
func EncodeGraph(g *Graph) ([]byte, error) {
	if g.Truncated || g.LimitErr != nil {
		return nil, fmt.Errorf("sdg: refusing to encode a truncated graph")
	}
	var w artifact.Writer
	w.Uvarint(uint64(len(g.nodeCtx)))
	for n := range g.nodeCtx {
		deps := g.Deps(Node(n))
		w.Uvarint(uint64(len(deps)))
		for _, d := range deps {
			w.Int64(int64(d.Src))
			w.Uvarint(uint64(d.Kind))
			w.Int64(int64(d.Via))
		}
	}
	// Caller-node lists in MCtx ID order; list order is load-bearing
	// (slicers and the fingerprint walk it as recorded).
	for _, mc := range g.mctxs {
		callers := g.callerNodes[mc]
		w.Uvarint(uint64(len(callers)))
		for _, c := range callers {
			w.Int64(int64(c))
		}
	}
	return w.Bytes(), nil
}

// DecodeGraph rebuilds a Graph from data against prog and pts (the
// artifacts the record was encoded over). Any structural fault in data
// is an error; decode never panics on corrupt input.
func DecodeGraph(data []byte, prog *ir.Program, pts *pointsto.Result) (g *Graph, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			g, err = nil, fmt.Errorf("sdg: decode: malformed payload: %v", rec)
		}
	}()
	g = &Graph{
		Prog:        prog,
		Pts:         pts,
		base:        make(map[*pointsto.MCtx]int32),
		firstID:     make(map[*ir.Method]int),
		callerNodes: make(map[*pointsto.MCtx][]Node),
	}
	// Scaffolding, exactly as BuildWorkers lays it out.
	methodSize := make(map[*ir.Method]int, len(prog.Methods))
	for _, m := range prog.Methods {
		first, n := -1, 0
		m.Instrs(func(ins ir.Instr) {
			if first < 0 {
				first = ins.ID()
			}
			n++
		})
		g.firstID[m] = first
		methodSize[m] = n
	}
	g.mctxs = pts.MCtxs()
	total := 0
	for _, mc := range g.mctxs {
		g.base[mc] = int32(total)
		total += methodSize[mc.Method]
	}
	g.nodeCtx = make([]*pointsto.MCtx, 0, total)
	for _, mc := range g.mctxs {
		for i := 0; i < methodSize[mc.Method]; i++ {
			g.nodeCtx = append(g.nodeCtx, mc)
		}
	}
	r := artifact.NewReader(data)
	if n := r.Uvarint(); r.Err() == nil && n != uint64(total) {
		return nil, fmt.Errorf("sdg: decode: record has %d nodes, program yields %d", n, total)
	}
	node := func() (Node, error) {
		v := r.Int64()
		if v < int64(NoNode) || v >= int64(total) {
			return NoNode, fmt.Errorf("sdg: decode: node %d out of range [-1, %d)", v, total)
		}
		return Node(v), nil
	}
	for i := 0; i < total; i++ {
		nDeps := r.Len()
		if r.Err() != nil {
			return nil, r.Err()
		}
		for j := 0; j < nDeps; j++ {
			src, err := node()
			if err != nil {
				return nil, firstErr(r.Err(), err)
			}
			kind := EdgeKind(r.Uvarint())
			if kind > EdgeCallControl {
				return nil, firstErr(r.Err(), fmt.Errorf("sdg: decode: unknown edge kind %d", kind))
			}
			via, err := node()
			if err != nil {
				return nil, firstErr(r.Err(), err)
			}
			g.emit(Node(i), Dep{Src: src, Kind: kind, Via: via})
		}
	}
	for _, mc := range g.mctxs {
		nCallers := r.Len()
		if r.Err() != nil {
			return nil, r.Err()
		}
		for j := 0; j < nCallers; j++ {
			c, err := node()
			if err != nil {
				return nil, firstErr(r.Err(), err)
			}
			g.callerNodes[mc] = append(g.callerNodes[mc], c)
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	g.finalize()
	return g, nil
}

func firstErr(readerErr, resolveErr error) error {
	if readerErr != nil {
		return readerErr
	}
	return resolveErr
}
