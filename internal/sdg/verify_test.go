package sdg_test

import (
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/papercases"
	"thinslice/internal/sdg"
)

// TestVerifyGraphDetectsCorruption proves the verifier rejects each
// class of malformed graph it claims to check — it is only a useful
// gate for the equivalence sweeps if corruption actually fails it.
func TestVerifyGraphDetectsCorruption(t *testing.T) {
	fresh := func(t *testing.T) *sdg.Graph {
		a, err := analyzer.Analyze(map[string]string{papercases.FileBugFile: papercases.FileBug})
		if err != nil {
			t.Fatal(err)
		}
		return a.Graph
	}
	if errs := sdg.VerifyGraph(fresh(t)); len(errs) > 0 {
		t.Fatalf("well-formed graph fails VerifyGraph: %v", errs[0])
	}
	for _, name := range []string{"offset-nonmonotone", "dep-out-of-bounds", "via-on-local", "context-dropped"} {
		t.Run(name, func(t *testing.T) {
			g := fresh(t)
			if !sdg.CorruptForTest(g, name) {
				t.Fatalf("corruption %q not applicable", name)
			}
			if errs := sdg.VerifyGraph(g); len(errs) == 0 {
				t.Errorf("corrupted graph (%s) passed VerifyGraph", name)
			}
		})
	}
}
