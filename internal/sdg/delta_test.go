package sdg_test

import (
	"bytes"
	"strings"
	"testing"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/depgraph"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/sdg"
)

// sdgDeltaProg mirrors the pointsto delta fixture: virtual dispatch,
// fields, statics, arrays, a container, branches (for control edges),
// and an unreachable method.
const sdgDeltaProg = `
class Box {
  Object val;
  void put(Object v) { this.val = v; }
  Object get() { return this.val; }
}
class Leaf {
  int twice(int x) { if (x > 0) { return x + x; } return 0; }
  Object wrap(Box b) { return b.get(); }
}
class Store {
  static Object cell;
  static void stash(Object o) { Store.cell = o; }
  static Object grab() { return Store.cell; }
}
class Dead {
  Object never(Box b) { return b.get(); }
}
class Main {
  static void main() {
    Box b = new Box();
    Leaf l = new Leaf();
    b.put(l);
    Object got = l.wrap(b);
    Store.stash(got);
    Object back = Store.grab();
    Vector list = new Vector();
    list.add(b);
    Object popped = list.get(0);
    Object[] arr = new Object[2];
    arr[0] = popped;
    Object out = arr[1];
    int n = l.twice(3);
  }
}
`

// sdgDeltaPipeline runs the full incremental pipeline over one edit —
// points-to SolveDelta feeding sdg.BuildDelta — and returns the delta
// graph, its stats, and the cold graph of the new revision.
func sdgDeltaPipeline(t *testing.T, oldSrcs, newSrcs map[string]string, objSens bool) (*sdg.Graph, sdg.DeltaStats, *sdg.Graph) {
	t.Helper()
	oldInfo, err := loader.Load(oldSrcs)
	if err != nil {
		t.Fatalf("load old: %v", err)
	}
	newInfo, err := loader.Load(newSrcs)
	if err != nil {
		t.Fatalf("load new: %v", err)
	}
	oldProg, newProg := ir.Lower(oldInfo), ir.Lower(newInfo)
	if len(oldProg.Diags) > 0 || len(newProg.Diags) > 0 {
		t.Fatalf("lowering diagnostics: %v %v", oldProg.Diags, newProg.Diags)
	}
	d := depgraph.Diff(depgraph.Build(oldInfo), depgraph.Build(newInfo))
	removed := append(append([]string(nil), d.Changed...), d.Removed...)
	added := append(append([]string(nil), d.Changed...), d.Added...)
	changed := append(append([]string(nil), removed...), d.Added...)
	edited := make(map[string]bool)
	for _, q := range removed {
		edited[q] = true
	}
	var unchanged []string
	for _, m := range oldProg.Methods {
		if !edited[m.Sig.QualifiedName()] {
			unchanged = append(unchanged, m.Sig.QualifiedName())
		}
	}
	pm, err := ir.MapPrograms(oldProg, newProg, unchanged)
	if err != nil {
		t.Fatalf("map programs: %v", err)
	}
	cfg := pointsto.Config{
		ObjSensContainers: objSens,
		ContainerClasses:  prelude.ContainerClasses,
		RetainState:       true,
	}
	oldPts, err := pointsto.Analyze(oldProg, cfg)
	if err != nil {
		t.Fatalf("cold solve (old): %v", err)
	}
	oldGraph, state, _ := sdg.BuildDelta(oldProg, oldPts, nil, nil)
	assertGraphsIdentical(t, "cold-path", oldGraph, sdg.Build(oldProg, oldPts))

	newPts, _, err := pointsto.SolveDelta(oldPts, newProg, pm, removed, added, cfg)
	if err != nil {
		t.Fatalf("SolveDelta: %v", err)
	}
	deltaGraph, _, stats := sdg.BuildDelta(newProg, newPts, state, changed)

	coldPts, err := pointsto.Analyze(newProg, cfg)
	if err != nil {
		t.Fatalf("cold solve (new): %v", err)
	}
	return deltaGraph, stats, sdg.Build(newProg, coldPts)
}

// assertGraphsIdentical pins both oracles: the structural fingerprint
// and the exact codec payload bytes.
func assertGraphsIdentical(t *testing.T, label string, got, want *sdg.Graph) {
	t.Helper()
	if gf, wf := got.Fingerprint(), want.Fingerprint(); gf != wf {
		t.Errorf("%s: fingerprint mismatch\n got %s\nwant %s", label, gf, wf)
	}
	gb, err := sdg.EncodeGraph(got)
	if err != nil {
		t.Fatalf("%s: encode got: %v", label, err)
	}
	wb, err := sdg.EncodeGraph(want)
	if err != nil {
		t.Fatalf("%s: encode want: %v", label, err)
	}
	if !bytes.Equal(gb, wb) {
		t.Errorf("%s: codec payloads differ (%d vs %d bytes)", label, len(gb), len(wb))
	}
}

func TestBuildDeltaEquivalence(t *testing.T) {
	oldSrcs := map[string]string{"prog.tj": sdgDeltaProg}
	cases := []struct {
		name     string
		from, to string
		// wantReused asserts the delta actually reused templates: local
		// edits must leave most methods' derivation state intact.
		wantReused int
	}{
		{"leaf-body", "return x + x;", "return x * 2;", 5},
		{"field-load", "return this.val;", "Object v = this.val; return v;", 5},
		{"static-store", "Store.cell = o;", "Object t = o; Store.cell = t;", 5},
		{"control-edit", "if (x > 0) { return x + x; }", "if (x > 1) { return x + x + x; }", 5},
		{"main-body", "int n = l.twice(3);", "int n = l.twice(4);", 5},
	}
	for _, objSens := range []bool{true, false} {
		mode := map[bool]string{true: "objsens", false: "ci"}[objSens]
		for _, tc := range cases {
			t.Run(mode+"/"+tc.name, func(t *testing.T) {
				edited := strings.Replace(sdgDeltaProg, tc.from, tc.to, 1)
				if edited == sdgDeltaProg {
					t.Fatalf("edit %q not applied", tc.from)
				}
				newSrcs := map[string]string{"prog.tj": edited}
				delta, stats, cold := sdgDeltaPipeline(t, oldSrcs, newSrcs, objSens)
				assertGraphsIdentical(t, tc.name, delta, cold)
				if stats.TemplatesReused < tc.wantReused {
					t.Errorf("%s: reused %d templates, want at least %d (stats %+v)",
						tc.name, stats.TemplatesReused, tc.wantReused, stats)
				}
			})
		}
	}
}

// TestBuildDeltaIdentity rebuilds with no edit at all: every template
// must be reused and the graph must round-trip byte-identically.
func TestBuildDeltaIdentity(t *testing.T) {
	info, err := loader.Load(map[string]string{"prog.tj": sdgDeltaProg})
	if err != nil {
		t.Fatal(err)
	}
	prog := ir.Lower(info)
	pts, err := pointsto.Analyze(prog, pointsto.Config{RetainState: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, state, first := sdg.BuildDelta(prog, pts, nil, nil)
	if first.TemplatesReused != 0 || first.TemplatesBuilt == 0 {
		t.Fatalf("cold build stats %+v", first)
	}
	again, _, stats := sdg.BuildDelta(prog, pts, state, nil)
	assertGraphsIdentical(t, "identity", again, cold)
	if stats.TemplatesBuilt != 0 {
		t.Errorf("identity rebuild derived %d templates, want 0 (stats %+v)", stats.TemplatesBuilt, stats)
	}
}

// TestBuildDeltaStaleTemplateGuard feeds BuildDelta a state whose
// template no longer matches the body (the caller "forgot" to list the
// method as changed) where the instruction count differs: the size
// guard must rebuild rather than replay garbage.
func TestBuildDeltaStaleTemplateGuard(t *testing.T) {
	oldSrc := map[string]string{"prog.tj": sdgDeltaProg}
	newSrc := map[string]string{"prog.tj": strings.Replace(sdgDeltaProg,
		"return this.val;", "Object v = this.val; return v;", 1)}
	oldInfo, _ := loader.Load(oldSrc)
	newInfo, _ := loader.Load(newSrc)
	oldProg, newProg := ir.Lower(oldInfo), ir.Lower(newInfo)
	oldPts, err := pointsto.Analyze(oldProg, pointsto.Config{})
	if err != nil {
		t.Fatal(err)
	}
	newPts, err := pointsto.Analyze(newProg, pointsto.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, state, _ := sdg.BuildDelta(oldProg, oldPts, nil, nil)
	// Deliberately empty changed list: Box.get grew by one instruction,
	// so its stale template must be caught by the size guard.
	delta, _, _ := sdg.BuildDelta(newProg, newPts, state, nil)
	assertGraphsIdentical(t, "stale-guard", delta, sdg.Build(newProg, newPts))
}
