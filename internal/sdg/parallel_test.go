package sdg_test

import (
	"context"
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
	"thinslice/internal/papercases"
	"thinslice/internal/randprog"
	"thinslice/internal/sdg"
)

// buildBoth lowers and points-to-analyzes srcs once, then builds the
// dependence graph sequentially and with a worker pool.
func fingerprints(t *testing.T, srcs map[string]string, workers int) (string, string) {
	t.Helper()
	defer sdg.ForceParallelForTest()()
	a, err := analyzer.Analyze(srcs, analyzer.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sdg.BuildBudget(a.Prog, a.Pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sdg.BuildWorkers(a.Prog, a.Pts, nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	// Both builds must also be structurally well-formed — equal
	// fingerprints on malformed graphs would prove nothing.
	if errs := sdg.VerifyGraph(seq); len(errs) > 0 {
		t.Fatalf("sequential graph fails VerifyGraph: %v", errs[0])
	}
	if errs := sdg.VerifyGraph(par); len(errs) > 0 {
		t.Fatalf("parallel graph fails VerifyGraph: %v", errs[0])
	}
	return seq.Fingerprint(), par.Fingerprint()
}

// TestParallelBuildMatchesSequentialPapercases pins the parallel SDG
// contract on the paper's running examples: every worker count yields
// a graph with identical per-node dependence lists, caller-node lists,
// and edge counts.
func TestParallelBuildMatchesSequentialPapercases(t *testing.T) {
	cases := map[string]map[string]string{
		"firstnames": {papercases.FirstNamesFile: papercases.FirstNames},
		"toy":        {papercases.ToyFile: papercases.Toy},
		"filebug":    {papercases.FileBugFile: papercases.FileBug},
		"toughcast":  {papercases.ToughCastFile: papercases.ToughCast},
	}
	for name, srcs := range cases {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{2, 4, 8} {
				seq, par := fingerprints(t, srcs, workers)
				if seq != par {
					t.Fatalf("workers=%d: parallel SDG fingerprint %s != sequential %s", workers, par, seq)
				}
			}
		})
	}
}

// TestParallelBuildMatchesSequentialRandprog sweeps the randomized
// corpus: 200 generated programs, each with sequential and parallel
// graphs compared by fingerprint.
func TestParallelBuildMatchesSequentialRandprog(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 20
	}
	for seed := 0; seed < n; seed++ {
		srcs := randprog.Generate(int64(seed), randprog.DefaultConfig)
		seq, par := fingerprints(t, srcs, 4)
		if seq != par {
			t.Fatalf("seed %d: parallel SDG diverged from sequential", seed)
		}
	}
}

// TestParallelBuildHonorsCancellation covers the parallel path's
// per-worker cancellation meters: a pre-canceled budget aborts the
// build with a typed error instead of returning a graph.
func TestParallelBuildHonorsCancellation(t *testing.T) {
	defer sdg.ForceParallelForTest()()
	a, err := analyzer.Analyze(map[string]string{papercases.FirstNamesFile: papercases.FirstNames})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := budget.New(ctx)
	cancel()
	if _, err := sdg.BuildWorkers(a.Prog, a.Pts, b, 4); err == nil {
		t.Fatal("parallel build with canceled budget returned no error")
	}
}

// TestPartitionCtxs pins the size-aware partitioner's contract: the
// buckets are contiguous, cover every context exactly once, and no
// bucket (except possibly a final remainder) is grossly oversized
// relative to the balance target.
func TestPartitionCtxs(t *testing.T) {
	cases := [][]int{
		{},
		{5},
		{1, 1, 1, 1, 1, 1, 1, 1},
		{100, 1, 1, 1, 1, 1, 1, 100},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 50, 1, 1},
	}
	for ci, sizes := range cases {
		buckets := sdg.PartitionCtxsForTest(sizes, 4)
		next := 0
		for _, b := range buckets {
			if b[0] != next || b[1] <= b[0] {
				t.Fatalf("case %d: bucket %v not contiguous from %d", ci, b, next)
			}
			next = b[1]
		}
		if next != len(sizes) {
			t.Fatalf("case %d: buckets cover [0,%d), want [0,%d)", ci, next, len(sizes))
		}
	}
}
