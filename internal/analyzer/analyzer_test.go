package analyzer_test

import (
	"strings"
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/papercases"
)

func TestAnalyzeEndToEnd(t *testing.T) {
	a, err := analyzer.Analyze(map[string]string{
		papercases.FirstNamesFile: papercases.FirstNames,
	}, analyzer.WithVerifyIR())
	if err != nil {
		t.Fatal(err)
	}
	if a.Info == nil || a.Prog == nil || a.Pts == nil || a.Graph == nil {
		t.Fatal("incomplete analysis")
	}
	if len(a.Pts.Entries()) != 1 {
		t.Fatalf("want 1 entry, got %d", len(a.Pts.Entries()))
	}
}

func TestAnalyzeReportsErrors(t *testing.T) {
	_, err := analyzer.Analyze(map[string]string{"bad.mj": `class A { int m() { return undeclared; } }`})
	if err == nil {
		t.Fatal("expected a semantic error")
	}
	if !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestWithEntries(t *testing.T) {
	src := `
		class A { static void main() { print(1); } }
		class B { static void other() { print(2); } }
	`
	a, err := analyzer.Analyze(map[string]string{"t.mj": src},
		analyzer.WithEntries("B.other"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pts.Entries()) != 1 || a.Pts.Entries()[0].Name() != "B.other" {
		t.Fatalf("entries: %v", a.Pts.Entries())
	}
	if a.Graph.Reachable(a.Method("A.main")) {
		t.Error("A.main should be unreachable from B.other")
	}
}

func TestWithoutPrelude(t *testing.T) {
	// A self-contained program that does not touch the containers.
	a, err := analyzer.Analyze(map[string]string{"t.mj": `
		class Main { static void main() { print(1); } }
	`}, analyzer.WithoutPrelude())
	if err != nil {
		t.Fatal(err)
	}
	if a.Info.Classes["Vector"] != nil {
		t.Error("prelude classes should be absent")
	}
	// Using the prelude without loading it must fail.
	_, err = analyzer.Analyze(map[string]string{"t.mj": `
		class Main { static void main() { Vector v = new Vector(); } }
	`}, analyzer.WithoutPrelude())
	if err == nil {
		t.Error("expected an error without the prelude")
	}
}

func TestMethodLookup(t *testing.T) {
	a, err := analyzer.Analyze(map[string]string{"t.mj": `
		class Main { static void main() { print(1); } }
	`})
	if err != nil {
		t.Fatal(err)
	}
	if a.Method("Main.main") == nil {
		t.Error("Method lookup failed")
	}
	if a.Method("Nope.never") != nil {
		t.Error("Method lookup invented a method")
	}
}

func TestMustAnalyzePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAnalyze should panic on bad input")
		}
	}()
	analyzer.MustAnalyze(map[string]string{"bad.mj": "class {"})
}

func TestSeedsAtSkipsBlankLines(t *testing.T) {
	src := `class Main {
    static void main() {
        print(1);
    }
}
`
	a := analyzer.MustAnalyze(map[string]string{"t.mj": src})
	if len(a.SeedsAt("t.mj", 3)) == 0 {
		t.Error("print line should have seeds")
	}
	if len(a.SeedsAt("t.mj", 1)) != 0 {
		t.Error("class header line should have no statements")
	}
}
