// Package analyzer is the library facade: it runs the full pipeline
// (parse → type check → lower to SSA IR → pointer analysis → dependence
// graph) and hands out thin and traditional slicers. Tools, examples,
// and experiments all start here.
package analyzer

import (
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/core"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/lang/types"
	"thinslice/internal/sdg"
)

// Analysis bundles the artifacts of one analyzed program.
type Analysis struct {
	Info  *types.Info
	Prog  *ir.Program
	Pts   *pointsto.Result
	Graph *sdg.Graph
}

type config struct {
	objSens    bool
	containers []string
	entries    []string // qualified method names
	noPrelude  bool
}

// Option configures Analyze.
type Option func(*config)

// WithObjSens toggles object-sensitive container handling in the
// pointer analysis (default on, the paper's precise configuration).
func WithObjSens(on bool) Option { return func(c *config) { c.objSens = on } }

// WithContainers overrides the set of container classes cloned
// object-sensitively.
func WithContainers(names []string) Option {
	return func(c *config) { c.containers = names }
}

// WithEntries sets explicit entry methods by qualified name
// (e.g. "Main.main"); default is every static method named main.
func WithEntries(names ...string) Option {
	return func(c *config) { c.entries = names }
}

// WithoutPrelude analyzes the sources without the container prelude.
func WithoutPrelude() Option { return func(c *config) { c.noPrelude = true } }

// Analyze runs the pipeline over the given sources (name → content).
func Analyze(sources map[string]string, opts ...Option) (*Analysis, error) {
	cfg := config{objSens: true, containers: prelude.ContainerClasses}
	for _, o := range opts {
		o(&cfg)
	}
	var info *types.Info
	var err error
	if cfg.noPrelude {
		info, err = loader.LoadBare(sources)
	} else {
		info, err = loader.Load(sources)
	}
	if err != nil {
		return nil, err
	}
	prog := ir.Lower(info)
	var entries []*ir.Method
	for _, name := range cfg.entries {
		for _, m := range prog.Methods {
			if m.Name() == name {
				entries = append(entries, m)
			}
		}
	}
	pts := pointsto.Analyze(prog, pointsto.Config{
		Entries:           entries,
		ObjSensContainers: cfg.objSens,
		ContainerClasses:  cfg.containers,
	})
	graph := sdg.Build(prog, pts)
	return &Analysis{Info: info, Prog: prog, Pts: pts, Graph: graph}, nil
}

// MustAnalyze is Analyze panicking on error, for known-good sources.
func MustAnalyze(sources map[string]string, opts ...Option) *Analysis {
	a, err := Analyze(sources, opts...)
	if err != nil {
		panic(err)
	}
	return a
}

// ThinSlicer returns a thin slicer over the analysis' graph.
func (a *Analysis) ThinSlicer() *core.Slicer { return core.NewThin(a.Graph) }

// TraditionalSlicer returns a traditional slicer; withControl includes
// transitive control dependences.
func (a *Analysis) TraditionalSlicer(withControl bool) *core.Slicer {
	return core.NewTraditional(a.Graph, withControl)
}

// SeedsAt returns the reachable statements at file:line.
func (a *Analysis) SeedsAt(file string, line int) []ir.Instr {
	return core.SeedsAt(a.Graph, file, line)
}

// Method returns the lowered method with the given qualified name.
func (a *Analysis) Method(qname string) *ir.Method {
	for _, m := range a.Prog.Methods {
		if m.Name() == qname {
			return m
		}
	}
	return nil
}
