// Package analyzer is the library facade: it runs the full pipeline
// (parse → type check → lower to SSA IR → pointer analysis → dependence
// graph) and hands out thin and traditional slicers. Tools, examples,
// and experiments all start here.
//
// Since the session refactor this package is a thin convenience
// wrapper over package session: Analyze opens a session, drives the
// artifact chain to the dependence graph, and bundles the results.
// Callers that make repeated or multi-seed queries over the same
// program should hold the session (Analysis.Session) or open one
// directly.
package analyzer

import (
	"context"
	"time"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/core"
	"thinslice/internal/ir"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/lang/types"
	"thinslice/internal/sdg"
	"thinslice/internal/session"
)

// Analysis bundles the artifacts of one analyzed program.
type Analysis struct {
	Info  *types.Info
	Prog  *ir.Program
	Pts   *pointsto.Result
	Graph *sdg.Graph

	// budget, when non-nil, bounds slicers handed out by this analysis.
	budget *budget.Budget
	// sess is the analysis session the artifacts came from; derived
	// artifacts (CHA, mod-ref, the context-sensitive graph) are
	// memoized there.
	sess *session.Session
}

// Partial reports whether any phase stopped early on an exhausted
// budget: the analysis is sound but may under-approximate (missing
// points-to facts or dependence edges). See Pts.Downgraded,
// Pts.Truncated, and Graph.Truncated for which phase degraded.
func (a *Analysis) Partial() bool {
	return (a.Pts != nil && a.Pts.Truncated) || (a.Graph != nil && a.Graph.Truncated)
}

type config struct {
	objSens    bool
	containers []string
	entries    []string // qualified method names
	noPrelude  bool
	verifyIR   bool
	budget     *budget.Budget
	timeout    time.Duration
	maxSteps   int64
	workers    int
	store      *session.Store
}

// Option configures Analyze.
type Option func(*config)

// WithObjSens toggles object-sensitive container handling in the
// pointer analysis (default on, the paper's precise configuration).
func WithObjSens(on bool) Option { return func(c *config) { c.objSens = on } }

// WithContainers overrides the set of container classes cloned
// object-sensitively.
func WithContainers(names []string) Option {
	return func(c *config) { c.containers = names }
}

// WithEntries sets explicit entry methods by qualified name
// (e.g. "Main.main"); default is every static method named main.
func WithEntries(names ...string) Option {
	return func(c *config) { c.entries = names }
}

// WithoutPrelude analyzes the sources without the container prelude.
func WithoutPrelude() Option { return func(c *config) { c.noPrelude = true } }

// WithVerifyIR runs ir.Verify over the lowered program and fails the
// pipeline with the violations found. Tests enable it unconditionally;
// production callers can opt in to catch lowering bugs at the cost of
// one extra pass over the IR.
func WithVerifyIR() Option { return func(c *config) { c.verifyIR = true } }

// WithBudget bounds the whole pipeline by an explicit budget. It takes
// precedence over WithTimeout/WithMaxSteps and the context passed to
// AnalyzeCtx.
func WithBudget(b *budget.Budget) Option { return func(c *config) { c.budget = b } }

// WithTimeout bounds the whole pipeline by a wall-clock timeout.
func WithTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithMaxSteps caps every phase at n steps (see budget.WithSteps).
func WithMaxSteps(n int64) Option { return func(c *config) { c.maxSteps = n } }

// WithWorkers sets the worker count for the parallel construction
// phases (SSA lowering, dependence-graph build): 1 forces sequential
// builds, 0 (the default) selects GOMAXPROCS. Output is byte-identical
// either way.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// InStore places the analysis' artifacts in an existing session store,
// sharing cached phases with every other analysis using that store.
func InStore(st *session.Store) Option { return func(c *config) { c.store = st } }

// Analyze runs the pipeline over the given sources (name → content).
func Analyze(sources map[string]string, opts ...Option) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), sources, opts...)
}

// AnalyzeCtx is Analyze bounded by a context: cancellation, context
// deadline, and any WithBudget/WithTimeout/WithMaxSteps options stop
// the pipeline promptly with a typed, phase-tagged error (see package
// budget) — or, for step exhaustion past the points-to phase, a partial
// Analysis for which Partial reports true. It never panics: internal
// faults surface as *budget.ErrInternal tagged with the running phase.
func AnalyzeCtx(ctx context.Context, sources map[string]string, opts ...Option) (*Analysis, error) {
	cfg := config{objSens: true, containers: prelude.ContainerClasses}
	for _, o := range opts {
		o(&cfg)
	}
	b := cfg.budget
	if b == nil {
		var bopts []budget.Option
		if cfg.timeout > 0 {
			bopts = append(bopts, budget.WithTimeout(cfg.timeout))
		}
		if cfg.maxSteps > 0 {
			bopts = append(bopts, budget.WithSteps(cfg.maxSteps))
		}
		b = budget.New(ctx, bopts...)
	}

	sopts := []session.Option{
		session.WithObjSens(cfg.objSens),
		session.WithContainers(cfg.containers),
		session.WithEntries(cfg.entries...),
		session.WithBudget(b),
		session.WithWorkers(cfg.workers),
	}
	if cfg.noPrelude {
		sopts = append(sopts, session.WithoutPrelude())
	}
	if cfg.verifyIR {
		sopts = append(sopts, session.WithVerifyIR())
	}
	if cfg.store != nil {
		sopts = append(sopts, session.InStore(cfg.store))
	}
	sess := session.Open(sources, sopts...)
	return FromSession(sess)
}

// FromSession drives an existing session to a full Analysis: the
// artifact chain up to the dependence graph is built (or fetched from
// the session's store) and bundled. Panics inside any phase surface as
// phase-tagged *budget.ErrInternal; an exhausted step budget past the
// points-to phase yields a partial Analysis for which Partial reports
// true, exactly as in the pre-session pipeline.
func FromSession(sess *session.Session) (*Analysis, error) {
	graph, err := sess.Graph()
	if err != nil {
		return nil, err
	}
	// The chain below the graph is memoized: these re-fetch, not rebuild.
	info, err := sess.Info()
	if err != nil {
		return nil, err
	}
	prog, err := sess.Prog()
	if err != nil {
		return nil, err
	}
	pts, err := sess.PointsTo()
	if err != nil {
		return nil, err
	}
	return &Analysis{Info: info, Prog: prog, Pts: pts, Graph: graph, budget: sess.Budget(), sess: sess}, nil
}

// Session returns the analysis session the artifacts came from.
func (a *Analysis) Session() *session.Session { return a.sess }

// MustAnalyze is Analyze panicking on error, for known-good sources.
func MustAnalyze(sources map[string]string, opts ...Option) *Analysis {
	a, err := Analyze(sources, opts...)
	if err != nil {
		panic(err)
	}
	return a
}

// Budget returns the budget bounding this analysis' slicers and any
// downstream passes (nil means unlimited).
func (a *Analysis) Budget() *budget.Budget { return a.budget }

// ThinSlicer returns a thin slicer over the analysis' graph, bounded
// by the analysis' budget.
func (a *Analysis) ThinSlicer() *core.Slicer {
	return core.NewThin(a.Graph).WithBudget(a.budget)
}

// TraditionalSlicer returns a traditional slicer; withControl includes
// transitive control dependences.
func (a *Analysis) TraditionalSlicer(withControl bool) *core.Slicer {
	return core.NewTraditional(a.Graph, withControl).WithBudget(a.budget)
}

// SeedsAt returns the reachable statements at file:line.
func (a *Analysis) SeedsAt(file string, line int) []ir.Instr {
	return core.SeedsAt(a.Graph, file, line)
}

// Method returns the lowered method with the given qualified name.
func (a *Analysis) Method(qname string) *ir.Method {
	for _, m := range a.Prog.Methods {
		if m.Name() == qname {
			return m
		}
	}
	return nil
}
