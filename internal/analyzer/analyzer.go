// Package analyzer is the library facade: it runs the full pipeline
// (parse → type check → lower to SSA IR → pointer analysis → dependence
// graph) and hands out thin and traditional slicers. Tools, examples,
// and experiments all start here.
package analyzer

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/budget"
	"thinslice/internal/core"
	"thinslice/internal/ir"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/lang/types"
	"thinslice/internal/sdg"
)

// Analysis bundles the artifacts of one analyzed program.
type Analysis struct {
	Info  *types.Info
	Prog  *ir.Program
	Pts   *pointsto.Result
	Graph *sdg.Graph

	// budget, when non-nil, bounds slicers handed out by this analysis.
	budget *budget.Budget
}

// Partial reports whether any phase stopped early on an exhausted
// budget: the analysis is sound but may under-approximate (missing
// points-to facts or dependence edges). See Pts.Downgraded,
// Pts.Truncated, and Graph.Truncated for which phase degraded.
func (a *Analysis) Partial() bool {
	return (a.Pts != nil && a.Pts.Truncated) || (a.Graph != nil && a.Graph.Truncated)
}

type config struct {
	objSens    bool
	containers []string
	entries    []string // qualified method names
	noPrelude  bool
	verifyIR   bool
	budget     *budget.Budget
	timeout    time.Duration
	maxSteps   int64
}

// Option configures Analyze.
type Option func(*config)

// WithObjSens toggles object-sensitive container handling in the
// pointer analysis (default on, the paper's precise configuration).
func WithObjSens(on bool) Option { return func(c *config) { c.objSens = on } }

// WithContainers overrides the set of container classes cloned
// object-sensitively.
func WithContainers(names []string) Option {
	return func(c *config) { c.containers = names }
}

// WithEntries sets explicit entry methods by qualified name
// (e.g. "Main.main"); default is every static method named main.
func WithEntries(names ...string) Option {
	return func(c *config) { c.entries = names }
}

// WithoutPrelude analyzes the sources without the container prelude.
func WithoutPrelude() Option { return func(c *config) { c.noPrelude = true } }

// WithVerifyIR runs ir.Verify over the lowered program and fails the
// pipeline with the violations found. Tests enable it unconditionally;
// production callers can opt in to catch lowering bugs at the cost of
// one extra pass over the IR.
func WithVerifyIR() Option { return func(c *config) { c.verifyIR = true } }

// WithBudget bounds the whole pipeline by an explicit budget. It takes
// precedence over WithTimeout/WithMaxSteps and the context passed to
// AnalyzeCtx.
func WithBudget(b *budget.Budget) Option { return func(c *config) { c.budget = b } }

// WithTimeout bounds the whole pipeline by a wall-clock timeout.
func WithTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithMaxSteps caps every phase at n steps (see budget.WithSteps).
func WithMaxSteps(n int64) Option { return func(c *config) { c.maxSteps = n } }

// Analyze runs the pipeline over the given sources (name → content).
func Analyze(sources map[string]string, opts ...Option) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), sources, opts...)
}

// AnalyzeCtx is Analyze bounded by a context: cancellation, context
// deadline, and any WithBudget/WithTimeout/WithMaxSteps options stop
// the pipeline promptly with a typed, phase-tagged error (see package
// budget) — or, for step exhaustion past the points-to phase, a partial
// Analysis for which Partial reports true. It never panics: internal
// faults surface as *budget.ErrInternal tagged with the running phase.
func AnalyzeCtx(ctx context.Context, sources map[string]string, opts ...Option) (a *Analysis, err error) {
	cfg := config{objSens: true, containers: prelude.ContainerClasses}
	for _, o := range opts {
		o(&cfg)
	}
	b := cfg.budget
	if b == nil {
		var bopts []budget.Option
		if cfg.timeout > 0 {
			bopts = append(bopts, budget.WithTimeout(cfg.timeout))
		}
		if cfg.maxSteps > 0 {
			bopts = append(bopts, budget.WithSteps(cfg.maxSteps))
		}
		b = budget.New(ctx, bopts...)
	}

	phase := budget.PhaseLoad
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, &budget.ErrInternal{Phase: phase, Value: r, Stack: debug.Stack()}
		}
	}()

	if err := b.Err(budget.PhaseLoad); err != nil {
		return nil, err
	}
	var info *types.Info
	if cfg.noPrelude {
		info, err = loader.LoadBare(sources)
	} else {
		info, err = loader.Load(sources)
	}
	if err != nil {
		return nil, err
	}

	phase = budget.PhaseLower
	if err := b.Err(budget.PhaseLower); err != nil {
		return nil, err
	}
	prog := ir.Lower(info)
	if len(prog.Diags) > 0 {
		return nil, prog.Diags
	}

	if cfg.verifyIR {
		phase = budget.PhaseVerify
		if err := b.Err(budget.PhaseVerify); err != nil {
			return nil, err
		}
		if verrs := ir.Verify(prog); len(verrs) > 0 {
			return nil, fmt.Errorf("analyzer: IR verification failed: %w (%d violation(s))", verrs[0], len(verrs))
		}
	}

	phase = budget.PhasePointsTo
	entries, err := resolveEntries(prog, cfg.entries)
	if err != nil {
		return nil, err
	}
	pts, err := pointsto.Analyze(prog, pointsto.Config{
		Entries:           entries,
		ObjSensContainers: cfg.objSens,
		ContainerClasses:  cfg.containers,
		Budget:            b,
	})
	if err != nil {
		return nil, err
	}

	phase = budget.PhaseSDG
	graph, err := sdg.BuildBudget(prog, pts, b)
	if err != nil {
		return nil, err
	}
	return &Analysis{Info: info, Prog: prog, Pts: pts, Graph: graph, budget: b}, nil
}

// resolveEntries maps explicit entry names to methods. A name that
// matches nothing is an error naming the available candidates, rather
// than a silent empty analysis.
func resolveEntries(prog *ir.Program, names []string) ([]*ir.Method, error) {
	var entries []*ir.Method
	var missing []string
	for _, name := range names {
		found := false
		for _, m := range prog.Methods {
			if m.Name() == name {
				entries = append(entries, m)
				found = true
			}
		}
		if !found {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		var mains []string
		for _, m := range prog.Methods {
			if m.Sig.Static && m.Sig.Name == "main" {
				mains = append(mains, m.Name())
			}
		}
		sort.Strings(mains)
		candidates := "none found"
		if len(mains) > 0 {
			candidates = strings.Join(mains, ", ")
		}
		return nil, fmt.Errorf("analyzer: entry method(s) not found: %s (available main candidates: %s)",
			strings.Join(missing, ", "), candidates)
	}
	return entries, nil
}

// MustAnalyze is Analyze panicking on error, for known-good sources.
func MustAnalyze(sources map[string]string, opts ...Option) *Analysis {
	a, err := Analyze(sources, opts...)
	if err != nil {
		panic(err)
	}
	return a
}

// Budget returns the budget bounding this analysis' slicers and any
// downstream passes (nil means unlimited).
func (a *Analysis) Budget() *budget.Budget { return a.budget }

// ThinSlicer returns a thin slicer over the analysis' graph, bounded
// by the analysis' budget.
func (a *Analysis) ThinSlicer() *core.Slicer {
	return core.NewThin(a.Graph).WithBudget(a.budget)
}

// TraditionalSlicer returns a traditional slicer; withControl includes
// transitive control dependences.
func (a *Analysis) TraditionalSlicer(withControl bool) *core.Slicer {
	return core.NewTraditional(a.Graph, withControl).WithBudget(a.budget)
}

// SeedsAt returns the reachable statements at file:line.
func (a *Analysis) SeedsAt(file string, line int) []ir.Instr {
	return core.SeedsAt(a.Graph, file, line)
}

// Method returns the lowered method with the given qualified name.
func (a *Analysis) Method(qname string) *ir.Method {
	for _, m := range a.Prog.Methods {
		if m.Name() == qname {
			return m
		}
	}
	return nil
}
