// Per-phase budget behavior, exercised through the real pipeline
// packages rather than the facade, so each phase's cancellation and
// exhaustion handling is pinned independently.
package analyzer_test

import (
	"context"
	"testing"
	"time"

	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
	"thinslice/internal/core/expand"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/papercases"
	"thinslice/internal/sdg"
)

func canceledBudget() *budget.Budget {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return budget.New(ctx)
}

func analysisFixture(t *testing.T) *analyzer.Analysis {
	t.Helper()
	a, err := analyzer.Analyze(map[string]string{
		papercases.FirstNamesFile: papercases.FirstNames,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func wantCanceledIn(t *testing.T, phase budget.Phase, elapsed time.Duration, err error) {
	t.Helper()
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation noticed after %v, want < 100ms", elapsed)
	}
	if !budget.IsCanceled(err) {
		t.Fatalf("IsCanceled(%v) = false, want true", err)
	}
	if p, ok := budget.PhaseOf(err); !ok || p != phase {
		t.Fatalf("PhaseOf(%v) = %q, want %q", err, p, phase)
	}
}

func TestPointsToCancellation(t *testing.T) {
	a := analysisFixture(t)
	start := time.Now()
	_, err := pointsto.Analyze(a.Prog, pointsto.Config{
		ObjSensContainers: true,
		ContainerClasses:  prelude.ContainerClasses,
		Budget:            canceledBudget(),
	})
	wantCanceledIn(t, budget.PhasePointsTo, time.Since(start), err)
}

func TestPointsToExhaustionDowngradesThenTruncates(t *testing.T) {
	a := analysisFixture(t)
	res, err := pointsto.Analyze(a.Prog, pointsto.Config{
		ObjSensContainers: true,
		ContainerClasses:  prelude.ContainerClasses,
		Budget:            budget.New(nil, budget.WithSteps(10)),
	})
	if err != nil {
		t.Fatalf("exhaustion must degrade, not fail: %v", err)
	}
	if !res.Downgraded {
		t.Error("want Downgraded after obj-sens exhaustion")
	}
	if !res.Truncated {
		t.Error("want Truncated when the downgraded run is also exhausted")
	}
	if !budget.IsExhausted(res.LimitErr) {
		t.Errorf("LimitErr = %v, want ErrExhausted", res.LimitErr)
	}
}

func TestSDGCancellation(t *testing.T) {
	a := analysisFixture(t)
	start := time.Now()
	_, err := sdg.BuildBudget(a.Prog, a.Pts, canceledBudget())
	wantCanceledIn(t, budget.PhaseSDG, time.Since(start), err)
}

func TestSDGExhaustionTruncates(t *testing.T) {
	a := analysisFixture(t)
	g, err := sdg.BuildBudget(a.Prog, a.Pts, budget.New(nil, budget.WithSteps(10)))
	if err != nil {
		t.Fatalf("exhaustion must yield a partial graph, not fail: %v", err)
	}
	if !g.Truncated {
		t.Error("want Truncated graph on a 10-step budget")
	}
	if !budget.IsExhausted(g.LimitErr) {
		t.Errorf("LimitErr = %v, want ErrExhausted", g.LimitErr)
	}
}

func TestSliceCancellation(t *testing.T) {
	a := analysisFixture(t)
	seeds := a.SeedsAt(papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, "SEED"))
	if len(seeds) == 0 {
		t.Fatal("no seeds at the Figure 1 print line")
	}
	s := a.ThinSlicer().WithBudget(canceledBudget())
	start := time.Now()
	sl := s.Slice(seeds...)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation noticed after %v, want < 100ms", elapsed)
	}
	if !sl.Truncated {
		t.Fatal("want a Truncated slice under a canceled budget")
	}
	if !budget.IsCanceled(sl.Err) {
		t.Fatalf("slice Err = %v, want canceled", sl.Err)
	}
}

func TestSliceExhaustionTruncates(t *testing.T) {
	a := analysisFixture(t)
	seeds := a.SeedsAt(papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, "SEED"))
	full := a.ThinSlicer().Slice(seeds...)
	b := budget.New(nil, budget.WithPhaseSteps(budget.PhaseSlice, 3))
	part := a.ThinSlicer().WithBudget(b).Slice(seeds...)
	if !part.Truncated {
		t.Fatal("want Truncated slice on a 3-step budget")
	}
	if !budget.IsExhausted(part.Err) {
		t.Fatalf("slice Err = %v, want ErrExhausted", part.Err)
	}
	if part.Size() > full.Size() {
		t.Fatalf("truncated slice (%d) larger than full slice (%d)", part.Size(), full.Size())
	}
}

func TestExpandCancellation(t *testing.T) {
	a := analysisFixture(t)
	seeds := a.SeedsAt(papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, "SEED"))
	start := time.Now()
	e := expand.NewExpansionBudget(a.Graph, true, canceledBudget(), seeds...)
	for e.Step() {
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation noticed after %v, want < 100ms", elapsed)
	}
	if !e.Truncated {
		t.Fatal("want Truncated expansion under a canceled budget")
	}
	if !budget.IsCanceled(e.Err) {
		t.Fatalf("expansion Err = %v, want canceled", e.Err)
	}
}

func TestExpandExhaustionTruncates(t *testing.T) {
	a := analysisFixture(t)
	seeds := a.SeedsAt(papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, "SEED"))
	b := budget.New(nil, budget.WithPhaseSteps(budget.PhaseExpand, 1))
	e := expand.NewExpansionBudget(a.Graph, true, b, seeds...)
	for e.Step() {
	}
	if !e.Truncated {
		t.Fatal("want Truncated expansion on a 1-step budget")
	}
}
