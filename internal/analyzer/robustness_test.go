package analyzer_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
	"thinslice/internal/papercases"
)

// adversarialCorpus is a table of malformed and pathological inputs.
// Each must come back from Analyze without panicking and within the
// per-case budget — with either a useful result or a descriptive error.
var adversarialCorpus = []struct {
	name string
	src  string
}{
	{"unterminated loop", `class Main {
		static void main() { int x = 0; while (true) { x = x + 1; } print(x); }
	}`},
	{"nested unterminated loops", `class Main {
		static void main() {
			while (true) { while (true) { while (true) { print(1); } } }
		}
	}`},
	{"deep block nesting", "class Main { static void main() { " +
		strings.Repeat("if (1 < 2) { ", 200) + "print(1);" + strings.Repeat(" }", 200) +
		" } }"},
	{"deep expression nesting", "class Main { static void main() { int x = " +
		strings.Repeat("(1 + ", 200) + "1" + strings.Repeat(")", 200) + "; print(x); } }"},
	{"unresolved field", `class A { int x; }
	class Main { static void main() { A a = new A(); print(a.nope); } }`},
	{"unresolved method", `class Main { static void main() { Main.nothing(); } }`},
	{"unresolved variable", `class Main { static void main() { print(ghost); } }`},
	{"self-recursive container", `class Main {
		static void main() {
			Vector v = new Vector();
			v.add(v);
			Vector w = (Vector) v.get(0);
			w.add(w);
			print(w.size());
		}
	}`},
	{"mutually recursive classes", `class A { B b; A() { } }
	class B { A a; B() { } }
	class Main { static void main() {
		A a = new A(); B b = new B(); a.b = b; b.a = a;
		while (true) { a = b.a; b = a.b; }
	} }`},
	{"infinite recursion", `class Main {
		static int down(int n) { return Main.down(n + 1); }
		static void main() { print(Main.down(0)); }
	}`},
	{"parse garbage", "class {{{{"},
	{"binary garbage", "\x00\x01\x02\xff class Main"},
	{"empty class soup", strings.Repeat("class C%d { } ", 1) + "class Main { static void main() { print(1); } }"},
	{"unterminated string", `class Main { static void main() { print("oops); } }`},
	{"break outside loop", `class Main { static void main() { break; } }`},
	// Regression: member-level recovery used to stall on a token that
	// neither starts a type nor is consumed by sync(), looping forever.
	{"statement keyword at member level", `class A { if while for } class Main { static void main() { print(1); } }`},
	{"stray class keyword in body", `class A { class } class B { }`},
}

// TestAdversarialCorpusNoPanic is the paper-facade robustness contract:
// no user-supplied source may panic the pipeline or hang it past its
// budget.
func TestAdversarialCorpusNoPanic(t *testing.T) {
	for _, tc := range adversarialCorpus {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			a, err := analyzer.Analyze(map[string]string{"t.mj": tc.src},
				analyzer.WithTimeout(2*time.Second))
			if elapsed := time.Since(start); elapsed > 2500*time.Millisecond {
				t.Fatalf("Analyze took %v, want ≈2s budget", elapsed)
			}
			var internal *budget.ErrInternal
			if errors.As(err, &internal) {
				t.Fatalf("internal panic leaked as error: %v\n%s", internal, internal.Stack)
			}
			if err == nil && a == nil {
				t.Fatal("nil analysis with nil error")
			}
		})
	}
}

// TestAnalyzeNeverPanicsProperty fuzzes Analyze with arbitrary strings:
// whatever the bytes, it must return (not panic) and any failure must
// be an ordinary error, not a recovered internal fault.
func TestAnalyzeNeverPanicsProperty(t *testing.T) {
	prop := func(src string) bool {
		a, err := analyzer.Analyze(map[string]string{"t.mj": src},
			analyzer.WithTimeout(2*time.Second))
		var internal *budget.ErrInternal
		if errors.As(err, &internal) {
			t.Logf("source %q: internal fault %v", src, internal)
			return false
		}
		return err != nil || a != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeNeverPanicsOnMutatedValidSource mutates a known-good
// program (truncations and splices), which exercises far more of the
// parser and checker than random bytes do.
func TestAnalyzeNeverPanicsOnMutatedValidSource(t *testing.T) {
	base := papercases.FirstNames
	var cases []string
	for cut := 0; cut < len(base); cut += 97 {
		cases = append(cases, base[:cut])
		cases = append(cases, base[:cut]+"}"+base[cut:])
	}
	for i, src := range cases {
		a, err := analyzer.Analyze(map[string]string{"t.mj": src},
			analyzer.WithTimeout(2*time.Second))
		var internal *budget.ErrInternal
		if errors.As(err, &internal) {
			t.Fatalf("mutation %d: internal fault %v\n%s", i, internal, internal.Stack)
		}
		if err == nil && a == nil {
			t.Fatalf("mutation %d: nil analysis with nil error", i)
		}
	}
}

// TestEntriesMismatchIsDescriptive: naming a non-existent entry must
// fail loudly, listing what could have been meant — not silently
// analyze an empty program.
func TestEntriesMismatchIsDescriptive(t *testing.T) {
	src := `
		class A { static void main() { print(1); } }
		class B { static void main() { print(2); } }
	`
	_, err := analyzer.Analyze(map[string]string{"t.mj": src},
		analyzer.WithEntries("C.main"))
	if err == nil {
		t.Fatal("want an error for a non-matching entry name")
	}
	for _, want := range []string{"C.main", "A.main", "B.main"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %s", err, want)
		}
	}
	// A matching name plus a bogus one still errors.
	_, err = analyzer.Analyze(map[string]string{"t.mj": src},
		analyzer.WithEntries("A.main", "Nope.never"))
	if err == nil || !strings.Contains(err.Error(), "Nope.never") {
		t.Fatalf("want error naming Nope.never, got %v", err)
	}
	// Exact matches keep working.
	a, err := analyzer.Analyze(map[string]string{"t.mj": src},
		analyzer.WithEntries("B.main"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pts.Entries()) != 1 || a.Pts.Entries()[0].Name() != "B.main" {
		t.Fatalf("entries: %v", a.Pts.Entries())
	}
}

// TestCanceledContextReturnsPromptly: a context canceled before (or
// during) the run surfaces as a typed, phase-tagged ErrCanceled within
// ~100ms regardless of program size.
func TestCanceledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := analyzer.AnalyzeCtx(ctx, map[string]string{
		papercases.FirstNamesFile: papercases.FirstNames,
	})
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation noticed after %v, want < 100ms", elapsed)
	}
	if !budget.IsCanceled(err) {
		t.Fatalf("IsCanceled(%v) = false, want true", err)
	}
	if _, ok := budget.PhaseOf(err); !ok {
		t.Fatalf("error %v should carry a phase tag", err)
	}
}

// TestContextDeadlineBoundsAnalysis: an already-expired context
// deadline is equivalent to cancellation.
func TestContextDeadlineBoundsAnalysis(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := analyzer.AnalyzeCtx(ctx, map[string]string{
		papercases.FirstNamesFile: papercases.FirstNames,
	})
	if !budget.IsCanceled(err) {
		t.Fatalf("IsCanceled(%v) = false, want true", err)
	}
}

// TestStepExhaustionDegradesGracefully: a starved step budget must not
// error out — the pipeline downgrades precision and flags the partial
// result instead.
func TestStepExhaustionDegradesGracefully(t *testing.T) {
	a, err := analyzer.Analyze(map[string]string{
		papercases.FirstNamesFile: papercases.FirstNames,
	}, analyzer.WithMaxSteps(20))
	if err != nil {
		t.Fatalf("exhaustion should degrade, not fail: %v", err)
	}
	if !a.Pts.Downgraded {
		t.Error("points-to should have downgraded to context-insensitive")
	}
	if !a.Partial() {
		t.Error("analysis should be flagged partial")
	}
	// The partial graph still slices without error.
	sl := a.ThinSlicer().Slice()
	if sl == nil {
		t.Fatal("nil slice from partial analysis")
	}
}

// TestGenerousBudgetIsInvisible: limits far above a small program's
// needs change nothing.
func TestGenerousBudgetIsInvisible(t *testing.T) {
	unbounded, err := analyzer.Analyze(map[string]string{
		papercases.FirstNamesFile: papercases.FirstNames,
	})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := analyzer.Analyze(map[string]string{
		papercases.FirstNamesFile: papercases.FirstNames,
	}, analyzer.WithTimeout(30*time.Second), analyzer.WithMaxSteps(10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Partial() || bounded.Pts.Downgraded {
		t.Fatal("generous budget must not truncate")
	}
	ub := unbounded.ThinSlicer().Slice(unbounded.SeedsAt(papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, "SEED"))...)
	bb := bounded.ThinSlicer().Slice(bounded.SeedsAt(papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, "SEED"))...)
	if ub.Size() != bb.Size() {
		t.Fatalf("bounded slice size %d != unbounded %d", bb.Size(), ub.Size())
	}
}
