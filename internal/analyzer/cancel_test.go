package analyzer_test

import (
	"context"
	"testing"
	"time"

	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
	"thinslice/internal/faults"
	"thinslice/internal/papercases"
	"thinslice/internal/session"
)

// cancelDuringPhase runs AnalyzeCtx with a context that is cancelled
// exactly as phase p begins — after the phase-boundary check, so the
// cancellation must be noticed mid-phase by the running analysis, not
// at the door. It asserts the typed error, the phase tag, promptness,
// and that nothing poisoned survives in the shared store.
func cancelDuringPhase(t *testing.T, p budget.Phase) {
	t.Helper()
	sources := map[string]string{papercases.FirstNamesFile: papercases.FirstNames}
	st := session.NewStore()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := faults.NewRegistry()
	// Call fires after the boundary's budget.Err check: the phase is
	// committed to running when the context dies under it.
	reg.Add(faults.Rule{Phase: p, Mode: faults.Call, Times: 1, Func: func() error {
		cancel()
		return nil
	}})
	uninstall := reg.Install()

	start := time.Now()
	_, err := analyzer.AnalyzeCtx(ctx, sources, analyzer.InStore(st))
	elapsed := time.Since(start)
	uninstall()

	if !budget.IsCanceled(err) {
		t.Fatalf("AnalyzeCtx = %v, want a canceled budget error", err)
	}
	if phase, _ := budget.PhaseOf(err); phase != p {
		t.Fatalf("cancellation attributed to phase %q, want %q (mid-phase detection)", phase, p)
	}
	// Promptness: the pipeline must abandon work at the next
	// cancellation check, far inside any deadline epsilon.
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled analysis took %v to return", elapsed)
	}

	// Nothing truncated was cached: a clean re-run over the same
	// store succeeds completely.
	a, err := analyzer.AnalyzeCtx(context.Background(), sources, analyzer.InStore(st))
	if err != nil {
		t.Fatalf("re-run after cancellation: %v", err)
	}
	if a.Partial() || a.Pts.Truncated || a.Pts.Downgraded || a.Graph.Truncated {
		t.Fatal("a truncated artifact from the cancelled run was cached")
	}
}

func TestCancelDuringPointsTo(t *testing.T) { cancelDuringPhase(t, budget.PhasePointsTo) }
func TestCancelDuringSDGBuild(t *testing.T) { cancelDuringPhase(t, budget.PhaseSDG) }

// TestDeadlineDuringAnalysisIsPrompt drives the whole pipeline into a
// wall-clock deadline mid-run (an injected slow build eats the budget)
// and asserts the return is prompt and typed rather than the sleep-
// then-finish worst case.
func TestDeadlineDuringAnalysisIsPrompt(t *testing.T) {
	sources := map[string]string{papercases.FirstNamesFile: papercases.FirstNames}
	reg := faults.NewRegistry()
	reg.Add(faults.Rule{Phase: budget.PhasePointsTo, Mode: faults.Sleep, Delay: 150 * time.Millisecond})
	defer reg.Install()()

	start := time.Now()
	_, err := analyzer.Analyze(sources, analyzer.WithTimeout(50*time.Millisecond))
	elapsed := time.Since(start)
	if !budget.IsCanceled(err) {
		t.Fatalf("Analyze = %v, want a canceled (deadline) budget error", err)
	}
	// The sleep holds the phase past its deadline; the pipeline must
	// notice at the first post-sleep check, not run to completion.
	if elapsed > 2*time.Second {
		t.Fatalf("deadline overrun: analysis returned after %v", elapsed)
	}
}
