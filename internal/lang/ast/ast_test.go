package ast_test

import (
	"testing"

	"thinslice/internal/lang/ast"
	"thinslice/internal/lang/token"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  ast.TypeExpr
		want string
	}{
		{&ast.PrimType{Kind: ast.PrimInt}, "int"},
		{&ast.PrimType{Kind: ast.PrimBool}, "boolean"},
		{&ast.PrimType{Kind: ast.PrimString}, "string"},
		{&ast.PrimType{Kind: ast.PrimVoid}, "void"},
		{&ast.NamedType{Name: "Foo"}, "Foo"},
		{&ast.ArrayType{Elem: &ast.NamedType{Name: "Foo"}}, "Foo[]"},
		{&ast.ArrayType{Elem: &ast.ArrayType{Elem: &ast.PrimType{Kind: ast.PrimInt}}}, "int[][]"},
	}
	for _, c := range cases {
		if got := ast.TypeString(c.typ); got != c.want {
			t.Errorf("TypeString = %q, want %q", got, c.want)
		}
	}
}

func TestProgramClassLookup(t *testing.T) {
	prog := &ast.Program{Classes: []*ast.ClassDecl{
		{Name: "A"}, {Name: "B"},
	}}
	if prog.Class("B") == nil || prog.Class("B").Name != "B" {
		t.Error("lookup failed")
	}
	if prog.Class("C") != nil {
		t.Error("phantom class")
	}
}

func TestPositions(t *testing.T) {
	pos := token.Pos{File: "f", Line: 4, Col: 2}
	nodes := []ast.Node{
		&ast.ClassDecl{NamePos: pos},
		&ast.FieldDecl{NamePos: pos},
		&ast.MethodDecl{NamePos: pos},
		&ast.Param{NamePos: pos},
		&ast.VarDecl{NamePos: pos},
		&ast.If{IfPos: pos},
		&ast.While{WhilePos: pos},
		&ast.For{ForPos: pos},
		&ast.Return{RetPos: pos},
		&ast.Throw{ThrowPos: pos},
		&ast.Assert{AssertPos: pos},
		&ast.Break{BreakPos: pos},
		&ast.Continue{ContinuePos: pos},
		&ast.Block{LbracePos: pos},
		&ast.IntLit{LitPos: pos},
		&ast.BoolLit{LitPos: pos},
		&ast.StrLit{LitPos: pos},
		&ast.NullLit{LitPos: pos},
		&ast.Ident{NamePos: pos},
		&ast.This{ThisPos: pos},
		&ast.Unary{OpPos: pos},
		&ast.New{NewPos: pos},
		&ast.NewArray{NewPos: pos},
		&ast.Cast{LparenPos: pos},
		&ast.Call{NamePos: pos},
		&ast.FieldAccess{NamePos: pos},
	}
	for _, n := range nodes {
		if n.Pos() != pos {
			t.Errorf("%T.Pos() = %v", n, n.Pos())
		}
	}
	// Derived positions.
	x := &ast.Ident{NamePos: pos}
	if (&ast.Binary{X: x}).Pos() != pos {
		t.Error("Binary position should come from X")
	}
	if (&ast.Index{X: x}).Pos() != pos {
		t.Error("Index position should come from X")
	}
	if (&ast.InstanceOf{X: x}).Pos() != pos {
		t.Error("InstanceOf position should come from X")
	}
	if (&ast.ExprStmt{X: x}).Pos() != pos {
		t.Error("ExprStmt position should come from X")
	}
	if (&ast.Assign{AssignPos: pos}).Pos() != pos {
		t.Error("Assign position wrong")
	}
	at := &ast.ArrayType{Elem: x0type(pos)}
	if at.Pos() != pos {
		t.Error("ArrayType position should come from elem")
	}
}

func x0type(pos token.Pos) ast.TypeExpr { return &ast.NamedType{NamePos: pos, Name: "T"} }

func TestPrimKindString(t *testing.T) {
	for _, k := range []ast.PrimKind{ast.PrimInt, ast.PrimBool, ast.PrimString, ast.PrimVoid} {
		if k.String() == "?" {
			t.Errorf("kind %d renders as ?", k)
		}
	}
}
