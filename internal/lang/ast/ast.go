// Package ast defines the abstract syntax tree for the MiniJava-style
// source language. Nodes carry source positions so that slices can be
// reported back in terms of source lines.
package ast

import "thinslice/internal/lang/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Program is a whole analyzed program: the union of all parsed files.
type Program struct {
	Classes []*ClassDecl
	// SrcBytes is the total size of the parsed sources (zero for
	// hand-built programs). Consumers use it to presize per-expression
	// tables; it never affects semantics.
	SrcBytes int
}

// Class returns the declaration of the named class, or nil.
func (p *Program) Class(name string) *ClassDecl {
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ClassDecl is a class declaration. Every class implicitly extends
// Object unless Super names another class.
type ClassDecl struct {
	NamePos token.Pos
	Name    string
	Super   string // "" means Object
	Fields  []*FieldDecl
	Methods []*MethodDecl
}

func (c *ClassDecl) Pos() token.Pos { return c.NamePos }

// FieldDecl is an instance or static field declaration.
type FieldDecl struct {
	NamePos token.Pos
	Static  bool
	Final   bool
	Type    TypeExpr
	Name    string
}

func (f *FieldDecl) Pos() token.Pos { return f.NamePos }

// MethodDecl is a method or constructor declaration. Constructors have
// IsCtor true, Name equal to the class name, and no return type.
type MethodDecl struct {
	NamePos token.Pos
	Static  bool
	IsCtor  bool
	Ret     TypeExpr // nil for constructors
	Name    string
	Params  []*Param
	Body    *Block
}

func (m *MethodDecl) Pos() token.Pos { return m.NamePos }

// Param is a formal parameter.
type Param struct {
	NamePos token.Pos
	Type    TypeExpr
	Name    string
}

func (p *Param) Pos() token.Pos { return p.NamePos }

// TypeExpr is a syntactic type.
type TypeExpr interface {
	Node
	typeExpr()
}

// PrimKind enumerates primitive types.
type PrimKind int

// Primitive type kinds.
const (
	PrimInt PrimKind = iota
	PrimBool
	PrimString
	PrimVoid
)

func (k PrimKind) String() string {
	switch k {
	case PrimInt:
		return "int"
	case PrimBool:
		return "boolean"
	case PrimString:
		return "string"
	case PrimVoid:
		return "void"
	}
	return "?"
}

// PrimType is a primitive type expression (int, boolean, string, void).
type PrimType struct {
	KindPos token.Pos
	Kind    PrimKind
}

func (t *PrimType) Pos() token.Pos { return t.KindPos }
func (t *PrimType) typeExpr()      {}

// NamedType references a class by name.
type NamedType struct {
	NamePos token.Pos
	Name    string
}

func (t *NamedType) Pos() token.Pos { return t.NamePos }
func (t *NamedType) typeExpr()      {}

// ArrayType is T[].
type ArrayType struct {
	Elem TypeExpr
}

func (t *ArrayType) Pos() token.Pos { return t.Elem.Pos() }
func (t *ArrayType) typeExpr()      {}

// TypeString renders a type expression as source text.
func TypeString(t TypeExpr) string {
	switch t := t.(type) {
	case *PrimType:
		return t.Kind.String()
	case *NamedType:
		return t.Name
	case *ArrayType:
		return TypeString(t.Elem) + "[]"
	}
	return "?"
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Block is { stmts... }.
type Block struct {
	LbracePos token.Pos
	Stmts     []Stmt
}

func (s *Block) Pos() token.Pos { return s.LbracePos }
func (s *Block) stmt()          {}

// VarDecl declares a local variable, optionally with an initializer.
type VarDecl struct {
	NamePos token.Pos
	Type    TypeExpr
	Name    string
	Init    Expr // may be nil
}

func (s *VarDecl) Pos() token.Pos { return s.NamePos }
func (s *VarDecl) stmt()          {}

// Assign assigns RHS to an lvalue (Ident, FieldAccess, or Index).
type Assign struct {
	AssignPos token.Pos
	LHS       Expr
	RHS       Expr
}

func (s *Assign) Pos() token.Pos { return s.AssignPos }
func (s *Assign) stmt()          {}

// If is a conditional with an optional else branch.
type If struct {
	IfPos token.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

func (s *If) Pos() token.Pos { return s.IfPos }
func (s *If) stmt()          {}

// While is a pre-test loop.
type While struct {
	WhilePos token.Pos
	Cond     Expr
	Body     Stmt
}

func (s *While) Pos() token.Pos { return s.WhilePos }
func (s *While) stmt()          {}

// For is a C-style for loop; Init and Post may be nil.
type For struct {
	ForPos token.Pos
	Init   Stmt // VarDecl, Assign, or ExprStmt
	Cond   Expr // may be nil (treated as true)
	Post   Stmt
	Body   Stmt
}

func (s *For) Pos() token.Pos { return s.ForPos }
func (s *For) stmt()          {}

// Return exits a method, optionally with a value.
type Return struct {
	RetPos token.Pos
	Value  Expr // may be nil
}

func (s *Return) Pos() token.Pos { return s.RetPos }
func (s *Return) stmt()          {}

// ExprStmt evaluates an expression (a call) for effect.
type ExprStmt struct {
	X Expr
}

func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (s *ExprStmt) stmt()          {}

// Throw raises an exception object; control does not continue.
type Throw struct {
	ThrowPos token.Pos
	X        Expr
}

func (s *Throw) Pos() token.Pos { return s.ThrowPos }
func (s *Throw) stmt()          {}

// Assert checks a condition; failure is a program failure point.
type Assert struct {
	AssertPos token.Pos
	Cond      Expr
}

func (s *Assert) Pos() token.Pos { return s.AssertPos }
func (s *Assert) stmt()          {}

// Break exits the innermost loop.
type Break struct{ BreakPos token.Pos }

func (s *Break) Pos() token.Pos { return s.BreakPos }
func (s *Break) stmt()          {}

// Continue jumps to the next iteration of the innermost loop.
type Continue struct{ ContinuePos token.Pos }

func (s *Continue) Pos() token.Pos { return s.ContinuePos }
func (s *Continue) stmt()          {}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal (also used for char literals).
type IntLit struct {
	LitPos token.Pos
	Value  int64
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *IntLit) expr()          {}

// BoolLit is true or false.
type BoolLit struct {
	LitPos token.Pos
	Value  bool
}

func (e *BoolLit) Pos() token.Pos { return e.LitPos }
func (e *BoolLit) expr()          {}

// StrLit is a string literal.
type StrLit struct {
	LitPos token.Pos
	Value  string
}

func (e *StrLit) Pos() token.Pos { return e.LitPos }
func (e *StrLit) expr()          {}

// NullLit is the null reference.
type NullLit struct{ LitPos token.Pos }

func (e *NullLit) Pos() token.Pos { return e.LitPos }
func (e *NullLit) expr()          {}

// Ident names a local variable, parameter, field of this, or class (in
// a static field/method access position).
type Ident struct {
	NamePos token.Pos
	Name    string
}

func (e *Ident) Pos() token.Pos { return e.NamePos }
func (e *Ident) expr()          {}

// This is the receiver reference.
type This struct{ ThisPos token.Pos }

func (e *This) Pos() token.Pos { return e.ThisPos }
func (e *This) expr()          {}

// Binary is a binary operation X Op Y.
type Binary struct {
	OpPos token.Pos
	Op    token.Kind
	X, Y  Expr
}

func (e *Binary) Pos() token.Pos { return e.X.Pos() }
func (e *Binary) expr()          {}

// Unary is !X or -X.
type Unary struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

func (e *Unary) Pos() token.Pos { return e.OpPos }
func (e *Unary) expr()          {}

// FieldAccess is X.Name, including array .length and static Class.f.
type FieldAccess struct {
	X       Expr
	NamePos token.Pos
	Name    string
}

func (e *FieldAccess) Pos() token.Pos { return e.NamePos }
func (e *FieldAccess) expr()          {}

// Index is X[I].
type Index struct {
	X, I Expr
}

func (e *Index) Pos() token.Pos { return e.X.Pos() }
func (e *Index) expr()          {}

// Call invokes a method. Recv is nil for unqualified calls (implicit
// this, a static method of the enclosing class, or a builtin such as
// print). A Recv that is an Ident naming a class is a static call.
type Call struct {
	Recv    Expr // may be nil
	NamePos token.Pos
	Name    string
	Args    []Expr
	IsSuper bool // true for super(...) constructor calls
}

func (e *Call) Pos() token.Pos { return e.NamePos }
func (e *Call) expr()          {}

// New allocates an object and runs its constructor.
type New struct {
	NewPos token.Pos
	Class  string
	Args   []Expr
}

func (e *New) Pos() token.Pos { return e.NewPos }
func (e *New) expr()          {}

// NewArray allocates an array: new T[Len].
type NewArray struct {
	NewPos token.Pos
	Elem   TypeExpr
	Len    Expr
}

func (e *NewArray) Pos() token.Pos { return e.NewPos }
func (e *NewArray) expr()          {}

// Cast is (T) X.
type Cast struct {
	LparenPos token.Pos
	Type      TypeExpr
	X         Expr
}

func (e *Cast) Pos() token.Pos { return e.LparenPos }
func (e *Cast) expr()          {}

// InstanceOf is X instanceof Class.
type InstanceOf struct {
	X     Expr
	Class string
}

func (e *InstanceOf) Pos() token.Pos { return e.X.Pos() }
func (e *InstanceOf) expr()          {}
