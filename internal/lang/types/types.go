// Package types implements semantic analysis for the MiniJava-style
// language: class hierarchy construction, name resolution, and type
// checking. Its output (Info) annotates the AST with everything the IR
// lowering needs: expression types, identifier references, field
// resolutions, and statically-resolved call targets.
package types

import (
	"fmt"

	"thinslice/internal/lang/ast"
	"thinslice/internal/lang/token"
)

// Type is the semantic type of an expression.
type Type interface {
	String() string
	isType()
}

// Basic is a primitive (non-reference) type or void/null.
type Basic int

// Basic kinds. NullT is the type of the null literal, assignable to any
// reference type.
const (
	IntT Basic = iota
	BoolT
	VoidT
	NullT
)

func (b Basic) String() string {
	switch b {
	case IntT:
		return "int"
	case BoolT:
		return "boolean"
	case VoidT:
		return "void"
	case NullT:
		return "null"
	}
	return "?"
}
func (Basic) isType() {}

// Class is a reference type backed by a class declaration. The
// predeclared classes Object and String have no Decl.
type Class struct {
	Info *ClassInfo
}

func (c *Class) String() string { return c.Info.Name }
func (*Class) isType()          {}

// Array is an array type with element type Elem.
type Array struct {
	Elem Type
}

func (a *Array) String() string { return a.Elem.String() + "[]" }
func (*Array) isType()          {}

// IsRef reports whether t is a reference type (class, array, or null).
func IsRef(t Type) bool {
	switch t := t.(type) {
	case *Class, *Array:
		return true
	case Basic:
		return t == NullT
	}
	return false
}

// ClassInfo is the semantic view of a class.
type ClassInfo struct {
	Name    string
	Super   *ClassInfo // nil only for Object
	Decl    *ast.ClassDecl
	Fields  []*FieldInfo  // declared in this class only
	Methods []*MethodInfo // declared in this class only
	Ctor    *MethodInfo   // may be a synthesized default constructor
	// ref is the shared *Class handed out by ClassType. Set once by
	// NewClassInfo before any concurrent phase runs; ClassType falls
	// back to a fresh wrapper for bare ClassInfo literals (tests).
	ref *Class
}

// NewClassInfo creates a ClassInfo with its shared ClassType wrapper.
func NewClassInfo(name string) *ClassInfo {
	ci := &ClassInfo{Name: name}
	ci.ref = &Class{Info: ci}
	return ci
}

// IsSubclassOf reports whether c is t or a (transitive) subclass of t.
func (c *ClassInfo) IsSubclassOf(t *ClassInfo) bool {
	for x := c; x != nil; x = x.Super {
		if x == t {
			return true
		}
	}
	return false
}

// LookupField finds a field by name in c or its superclasses.
func (c *ClassInfo) LookupField(name string) *FieldInfo {
	for x := c; x != nil; x = x.Super {
		for _, f := range x.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// LookupMethod finds a method by name in c or its superclasses.
func (c *ClassInfo) LookupMethod(name string) *MethodInfo {
	for x := c; x != nil; x = x.Super {
		for _, m := range x.Methods {
			if m.Name == name {
				return m
			}
		}
	}
	return nil
}

// FieldInfo is a resolved field.
type FieldInfo struct {
	Owner  *ClassInfo
	Name   string
	Type   Type
	Static bool
	Final  bool
	Decl   *ast.FieldDecl
	// qname caches QualifiedName — the SDG scan asks for it once per
	// heap access per context, and concatenating each time shows up in
	// allocation profiles. Set by the checker; empty for bare literals.
	qname string
}

// QualifiedName is Owner.Name, unique across the program.
func (f *FieldInfo) QualifiedName() string {
	if f.qname != "" {
		return f.qname
	}
	return f.Owner.Name + "." + f.Name
}

// MethodInfo is a resolved method or constructor.
type MethodInfo struct {
	Owner  *ClassInfo
	Name   string
	Static bool
	IsCtor bool
	Params []Type
	Ret    Type
	Decl   *ast.MethodDecl // nil for synthesized default constructors
}

// QualifiedName is Owner.Name(...), unique because overloading is not
// supported.
func (m *MethodInfo) QualifiedName() string {
	if m.IsCtor {
		return m.Owner.Name + ".<init>"
	}
	return m.Owner.Name + "." + m.Name
}

// Intrinsic identifies builtin operations that are not user methods.
type Intrinsic int

// Intrinsic kinds. Str* intrinsics are methods on String receivers;
// the rest are unqualified builtin functions.
const (
	NoIntrinsic     Intrinsic = iota
	StrLength                 // s.length() int
	StrSubstring              // s.substring(int,int) string
	StrIndexOf                // s.indexOf(string) int
	StrCharAt                 // s.charAt(int) int
	StrEquals                 // s.equals(string) boolean
	StrStartsWith             // s.startsWith(string) boolean
	StrConcatI                // via + (not a call form)
	BuiltinPrint              // print(any) void
	BuiltinItoa               // itoa(int) string
	BuiltinInput              // input() string    — external data source
	BuiltinInputInt           // inputInt() int    — external data source
)

// CallInfo is the static resolution of one call expression.
type CallInfo struct {
	Method    *MethodInfo // nil for intrinsics
	Intrinsic Intrinsic
	// StaticCall is true when the call was made through a class name or
	// the target is a static method (no dynamic dispatch).
	StaticCall bool
}

// RefKind classifies what an identifier resolves to.
type RefKind int

// Reference kinds for identifier uses.
const (
	RefLocal RefKind = iota
	RefParam
	RefField       // instance field of this
	RefStaticField // static field (possibly of a superclass)
	RefClass       // class name (receiver of static member access)
)

// Ref is the resolution of one identifier use.
type Ref struct {
	Kind  RefKind
	Local *ast.VarDecl
	Param *ast.Param
	Field *FieldInfo
	Class *ClassInfo
}

// Info is the result of checking a program.
type Info struct {
	Prog    *ast.Program
	Classes map[string]*ClassInfo
	Object  *ClassInfo
	String  *ClassInfo

	ExprTypes  map[ast.Expr]Type
	Refs       map[*ast.Ident]*Ref
	FieldRefs  map[*ast.FieldAccess]*FieldInfo
	IsArrayLen map[*ast.FieldAccess]bool
	Calls      map[*ast.Call]*CallInfo
	// MethodOfDecl maps each method declaration back to its info.
	MethodOfDecl map[*ast.MethodDecl]*MethodInfo
}

// TypeOf returns the checked type of e (nil if unchecked due to errors).
func (info *Info) TypeOf(e ast.Expr) Type { return info.ExprTypes[e] }

// ClassType returns the reference type for a class info. Checker-built
// classes share one wrapper (this is one of the hottest allocation
// sites of checking and lowering otherwise); consumers must compare
// Class values by Info, never by pointer.
func ClassType(c *ClassInfo) *Class {
	if c.ref != nil {
		return c.ref
	}
	return &Class{Info: c}
}

// Error is a semantic error with a position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msg := l[0].Error()
	if len(l) > 1 {
		msg += fmt.Sprintf(" (and %d more errors)", len(l)-1)
	}
	return msg
}

type checker struct {
	info   *Info
	errors ErrorList

	// current method context
	curClass  *ClassInfo
	curMethod *MethodInfo
	scopes    []map[string]*Ref
}

// Check performs semantic analysis on prog. It returns partial Info even
// when errors are present, so tools can operate best-effort.
func Check(prog *ast.Program) (*Info, error) {
	// Roughly one checked expression per eight source bytes; presizing
	// the big per-expression tables avoids their incremental rehashes,
	// which otherwise dominate the checker's allocation profile.
	nExpr := prog.SrcBytes / 8
	info := &Info{
		Prog:         prog,
		Classes:      make(map[string]*ClassInfo),
		ExprTypes:    make(map[ast.Expr]Type, nExpr),
		Refs:         make(map[*ast.Ident]*Ref, nExpr/2),
		FieldRefs:    make(map[*ast.FieldAccess]*FieldInfo),
		IsArrayLen:   make(map[*ast.FieldAccess]bool),
		Calls:        make(map[*ast.Call]*CallInfo, nExpr/8),
		MethodOfDecl: make(map[*ast.MethodDecl]*MethodInfo),
	}
	c := &checker{info: info}
	c.collectClasses(prog)
	c.resolveHierarchy(prog)
	c.collectMembers()
	c.checkBodies()
	if len(c.errors) > 0 {
		return info, c.errors
	}
	return info, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errors = append(c.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) collectClasses(prog *ast.Program) {
	c.info.Object = NewClassInfo("Object")
	c.info.String = NewClassInfo("String")
	c.info.String.Super = c.info.Object
	c.info.Classes["Object"] = c.info.Object
	c.info.Classes["String"] = c.info.String
	for _, decl := range prog.Classes {
		if decl.Name == "Object" || decl.Name == "String" {
			c.errorf(decl.Pos(), "cannot redeclare predeclared class %s", decl.Name)
			continue
		}
		if _, dup := c.info.Classes[decl.Name]; dup {
			c.errorf(decl.Pos(), "duplicate class %s", decl.Name)
			continue
		}
		ci := NewClassInfo(decl.Name)
		ci.Decl = decl
		c.info.Classes[decl.Name] = ci
	}
}

func (c *checker) resolveHierarchy(prog *ast.Program) {
	for _, decl := range prog.Classes {
		ci := c.info.Classes[decl.Name]
		if ci == nil || ci.Decl != decl {
			continue // duplicate
		}
		if decl.Super == "" {
			ci.Super = c.info.Object
			continue
		}
		sup, ok := c.info.Classes[decl.Super]
		if !ok {
			c.errorf(decl.Pos(), "class %s extends undeclared class %s", decl.Name, decl.Super)
			ci.Super = c.info.Object
			continue
		}
		ci.Super = sup
	}
	// Detect inheritance cycles; break them at Object.
	for _, ci := range c.info.Classes {
		seen := map[*ClassInfo]bool{}
		for x := ci; x != nil; x = x.Super {
			if seen[x] {
				c.errorf(ci.Decl.Pos(), "inheritance cycle involving class %s", x.Name)
				x.Super = c.info.Object
				break
			}
			seen[x] = true
		}
	}
}

// resolveType converts a syntactic type to a semantic one.
func (c *checker) resolveType(t ast.TypeExpr) Type {
	switch t := t.(type) {
	case *ast.PrimType:
		switch t.Kind {
		case ast.PrimInt:
			return IntT
		case ast.PrimBool:
			return BoolT
		case ast.PrimString:
			return ClassType(c.info.String)
		case ast.PrimVoid:
			return VoidT
		}
	case *ast.NamedType:
		if ci, ok := c.info.Classes[t.Name]; ok {
			return ClassType(ci)
		}
		c.errorf(t.Pos(), "undeclared class %s", t.Name)
		return ClassType(c.info.Object)
	case *ast.ArrayType:
		return &Array{Elem: c.resolveType(t.Elem)}
	}
	return VoidT
}

func (c *checker) collectMembers() {
	for _, decl := range c.info.Prog.Classes {
		ci := c.info.Classes[decl.Name]
		if ci == nil || ci.Decl != decl {
			continue
		}
		for _, f := range decl.Fields {
			if lookupOwn(ci.Fields, f.Name) != nil {
				c.errorf(f.Pos(), "duplicate field %s in class %s", f.Name, ci.Name)
				continue
			}
			ci.Fields = append(ci.Fields, &FieldInfo{
				Owner: ci, Name: f.Name, Type: c.resolveType(f.Type),
				Static: f.Static, Final: f.Final, Decl: f,
				qname: ci.Name + "." + f.Name,
			})
		}
		for _, m := range decl.Methods {
			mi := &MethodInfo{
				Owner: ci, Name: m.Name, Static: m.Static, IsCtor: m.IsCtor, Decl: m,
			}
			for _, p := range m.Params {
				mi.Params = append(mi.Params, c.resolveType(p.Type))
			}
			if m.IsCtor {
				mi.Ret = VoidT
				if ci.Ctor != nil {
					c.errorf(m.Pos(), "duplicate constructor in class %s (overloading unsupported)", ci.Name)
					continue
				}
				ci.Ctor = mi
			} else {
				mi.Ret = c.resolveType(m.Ret)
				for _, prev := range ci.Methods {
					if prev.Name == m.Name {
						c.errorf(m.Pos(), "duplicate method %s in class %s (overloading unsupported)", m.Name, ci.Name)
					}
				}
				ci.Methods = append(ci.Methods, mi)
			}
			c.info.MethodOfDecl[m] = mi
		}
		if ci.Ctor == nil {
			ci.Ctor = &MethodInfo{Owner: ci, Name: ci.Name, IsCtor: true, Ret: VoidT}
		}
	}
	// Override compatibility: an override must match param and return types.
	for _, ci := range c.info.Classes {
		for _, m := range ci.Methods {
			if ci.Super == nil {
				continue
			}
			if sup := ci.Super.LookupMethod(m.Name); sup != nil {
				if !signaturesMatch(m, sup) {
					c.errorf(m.Decl.Pos(), "method %s.%s overrides %s.%s with a different signature",
						ci.Name, m.Name, sup.Owner.Name, sup.Name)
				}
				if sup.Static != m.Static {
					c.errorf(m.Decl.Pos(), "method %s.%s changes staticness of inherited method", ci.Name, m.Name)
				}
			}
		}
	}
}

func lookupOwn(fields []*FieldInfo, name string) *FieldInfo {
	for _, f := range fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func signaturesMatch(a, b *MethodInfo) bool {
	if len(a.Params) != len(b.Params) || !Identical(a.Ret, b.Ret) {
		return false
	}
	for i := range a.Params {
		if !Identical(a.Params[i], b.Params[i]) {
			return false
		}
	}
	return true
}

// Identical reports structural type identity.
func Identical(a, b Type) bool {
	switch a := a.(type) {
	case Basic:
		b, ok := b.(Basic)
		return ok && a == b
	case *Class:
		b, ok := b.(*Class)
		return ok && a.Info == b.Info
	case *Array:
		b, ok := b.(*Array)
		return ok && Identical(a.Elem, b.Elem)
	}
	return false
}

// AssignableTo reports whether a value of type src may be assigned to a
// location of type dst. Reference types use Java-like subtyping with
// covariant arrays; null is assignable to any reference type.
func AssignableTo(src, dst Type) bool {
	if Identical(src, dst) {
		return true
	}
	if src == Basic(NullT) {
		return IsRef(dst)
	}
	switch src := src.(type) {
	case *Class:
		if dst, ok := dst.(*Class); ok {
			return src.Info.IsSubclassOf(dst.Info)
		}
	case *Array:
		if dst, ok := dst.(*Class); ok {
			return dst.Info.Name == "Object"
		}
		if dst, ok := dst.(*Array); ok {
			return AssignableTo(src.Elem, dst.Elem) && IsRef(src.Elem)
		}
	}
	return false
}

// CastableTo reports whether (dst) src is a legal cast: identical
// types, widening, or narrowing among related reference types.
func CastableTo(src, dst Type) bool {
	if AssignableTo(src, dst) || AssignableTo(dst, src) {
		return true
	}
	// Object <-> arrays.
	if c, ok := src.(*Class); ok && c.Info.Name == "Object" {
		if _, isArr := dst.(*Array); isArr {
			return true
		}
	}
	return false
}

func (c *checker) checkBodies() {
	for _, decl := range c.info.Prog.Classes {
		ci := c.info.Classes[decl.Name]
		if ci == nil || ci.Decl != decl {
			continue
		}
		c.curClass = ci
		for _, m := range decl.Methods {
			mi := c.info.MethodOfDecl[m]
			if mi == nil {
				continue
			}
			c.curMethod = mi
			c.scopes = []map[string]*Ref{{}}
			for i, p := range m.Params {
				c.declare(p.Name, &Ref{Kind: RefParam, Param: p}, p.Pos())
				_ = i
			}
			c.checkStmt(m.Body)
		}
	}
	c.curClass = nil
	c.curMethod = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Ref{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, r *Ref, pos token.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "redeclaration of %s in the same scope", name)
	}
	top[name] = r
}

func (c *checker) lookup(name string) *Ref {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if r, ok := c.scopes[i][name]; ok {
			return r
		}
	}
	return nil
}

func (c *checker) paramType(p *ast.Param) Type   { return c.resolveType(p.Type) }
func (c *checker) localType(d *ast.VarDecl) Type { return c.resolveType(d.Type) }

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.Block:
		c.pushScope()
		for _, st := range s.Stmts {
			c.checkStmt(st)
		}
		c.popScope()
	case *ast.VarDecl:
		t := c.resolveType(s.Type)
		if s.Init != nil {
			it := c.checkExpr(s.Init)
			if it != nil && !AssignableTo(it, t) {
				c.errorf(s.Pos(), "cannot initialize %s (%s) with value of type %s", s.Name, t, it)
			}
		}
		c.declare(s.Name, &Ref{Kind: RefLocal, Local: s}, s.Pos())
	case *ast.Assign:
		lt := c.checkLValue(s.LHS)
		rt := c.checkExpr(s.RHS)
		if lt != nil && rt != nil && !AssignableTo(rt, lt) {
			c.errorf(s.Pos(), "cannot assign value of type %s to location of type %s", rt, lt)
		}
	case *ast.If:
		c.checkCond(s.Cond)
		c.checkStmt(s.Then)
		c.checkStmt(s.Else)
	case *ast.While:
		c.checkCond(s.Cond)
		c.checkStmt(s.Body)
	case *ast.For:
		c.pushScope()
		c.checkStmt(s.Init)
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		c.checkStmt(s.Post)
		c.checkStmt(s.Body)
		c.popScope()
	case *ast.Return:
		var vt Type = VoidT
		if s.Value != nil {
			vt = c.checkExpr(s.Value)
		}
		ret := c.curMethod.Ret
		if s.Value == nil && ret != Basic(VoidT) {
			c.errorf(s.Pos(), "missing return value (method returns %s)", ret)
		} else if s.Value != nil {
			if ret == Basic(VoidT) {
				c.errorf(s.Pos(), "void method cannot return a value")
			} else if vt != nil && !AssignableTo(vt, ret) {
				c.errorf(s.Pos(), "cannot return %s from method returning %s", vt, ret)
			}
		}
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.Throw:
		t := c.checkExpr(s.X)
		if t != nil && !IsRef(t) {
			c.errorf(s.Pos(), "throw requires an object, got %s", t)
		}
	case *ast.Assert:
		c.checkCond(s.Cond)
	case *ast.Break, *ast.Continue:
		// Loop-nesting validity is enforced during IR lowering.
	default:
		c.errorf(s.Pos(), "unexpected statement %T", s)
	}
}

func (c *checker) checkCond(e ast.Expr) {
	t := c.checkExpr(e)
	if t != nil && t != Basic(BoolT) {
		c.errorf(e.Pos(), "condition must be boolean, got %s", t)
	}
}

// checkLValue checks an assignment target and returns its type.
func (c *checker) checkLValue(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.Ident:
		t := c.checkExpr(e)
		if r := c.info.Refs[e]; r != nil && r.Kind == RefClass {
			c.errorf(e.Pos(), "cannot assign to class name %s", e.Name)
			return nil
		}
		return t
	case *ast.FieldAccess:
		t := c.checkExpr(e)
		if c.info.IsArrayLen[e] {
			c.errorf(e.Pos(), "cannot assign to array length")
			return nil
		}
		return t
	case *ast.Index:
		return c.checkExpr(e)
	}
	c.errorf(e.Pos(), "invalid assignment target")
	c.checkExpr(e)
	return nil
}

func (c *checker) setType(e ast.Expr, t Type) Type {
	c.info.ExprTypes[e] = t
	return t
}

func (c *checker) checkExpr(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return c.setType(e, IntT)
	case *ast.BoolLit:
		return c.setType(e, BoolT)
	case *ast.StrLit:
		return c.setType(e, ClassType(c.info.String))
	case *ast.NullLit:
		return c.setType(e, NullT)
	case *ast.This:
		if c.curMethod.Static {
			c.errorf(e.Pos(), "cannot use 'this' in a static method")
		}
		return c.setType(e, ClassType(c.curClass))
	case *ast.Ident:
		return c.checkIdent(e)
	case *ast.Binary:
		return c.checkBinary(e)
	case *ast.Unary:
		t := c.checkExpr(e.X)
		switch e.Op {
		case token.NOT:
			if t != nil && t != Basic(BoolT) {
				c.errorf(e.Pos(), "operator ! requires boolean, got %s", t)
			}
			return c.setType(e, BoolT)
		case token.SUB:
			if t != nil && t != Basic(IntT) {
				c.errorf(e.Pos(), "operator - requires int, got %s", t)
			}
			return c.setType(e, IntT)
		}
		return c.setType(e, IntT)
	case *ast.FieldAccess:
		return c.checkFieldAccess(e)
	case *ast.Index:
		xt := c.checkExpr(e.X)
		it := c.checkExpr(e.I)
		if it != nil && it != Basic(IntT) {
			c.errorf(e.I.Pos(), "array index must be int, got %s", it)
		}
		if arr, ok := xt.(*Array); ok {
			return c.setType(e, arr.Elem)
		}
		if xt != nil {
			c.errorf(e.Pos(), "cannot index non-array type %s", xt)
		}
		return c.setType(e, IntT)
	case *ast.Call:
		return c.checkCall(e)
	case *ast.New:
		return c.checkNew(e)
	case *ast.NewArray:
		lt := c.checkExpr(e.Len)
		if lt != nil && lt != Basic(IntT) {
			c.errorf(e.Len.Pos(), "array length must be int, got %s", lt)
		}
		return c.setType(e, &Array{Elem: c.resolveType(e.Elem)})
	case *ast.Cast:
		xt := c.checkExpr(e.X)
		dt := c.resolveType(e.Type)
		if xt != nil && !CastableTo(xt, dt) {
			c.errorf(e.Pos(), "impossible cast from %s to %s", xt, dt)
		}
		return c.setType(e, dt)
	case *ast.InstanceOf:
		xt := c.checkExpr(e.X)
		if xt != nil && !IsRef(xt) {
			c.errorf(e.Pos(), "instanceof requires a reference, got %s", xt)
		}
		if _, ok := c.info.Classes[e.Class]; !ok {
			c.errorf(e.Pos(), "instanceof against undeclared class %s", e.Class)
		}
		return c.setType(e, BoolT)
	}
	c.errorf(e.Pos(), "unexpected expression %T", e)
	return nil
}

func (c *checker) checkIdent(e *ast.Ident) Type {
	if r := c.lookup(e.Name); r != nil {
		c.info.Refs[e] = r
		switch r.Kind {
		case RefLocal:
			return c.setType(e, c.localType(r.Local))
		case RefParam:
			return c.setType(e, c.paramType(r.Param))
		}
	}
	// Field of the enclosing class (or a superclass)?
	if f := c.curClass.LookupField(e.Name); f != nil {
		kind := RefField
		if f.Static {
			kind = RefStaticField
		} else if c.curMethod.Static {
			c.errorf(e.Pos(), "cannot use instance field %s in a static method", e.Name)
		}
		c.info.Refs[e] = &Ref{Kind: kind, Field: f}
		return c.setType(e, f.Type)
	}
	// Class name, for static member access C.f or C.m().
	if ci, ok := c.info.Classes[e.Name]; ok {
		c.info.Refs[e] = &Ref{Kind: RefClass, Class: ci}
		return c.setType(e, ClassType(ci))
	}
	c.errorf(e.Pos(), "undeclared identifier %s", e.Name)
	return c.setType(e, IntT)
}

func (c *checker) checkBinary(e *ast.Binary) Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	strT := ClassType(c.info.String)
	switch e.Op {
	case token.ADD:
		// String concatenation: string + string|int.
		if isString(xt) || isString(yt) {
			okOperand := func(t Type) bool { return t == nil || isString(t) || t == Basic(IntT) }
			if !okOperand(xt) || !okOperand(yt) {
				c.errorf(e.Pos(), "invalid operands for string concatenation: %s + %s", xt, yt)
			}
			return c.setType(e, strT)
		}
		fallthrough
	case token.SUB, token.MUL, token.QUO, token.REM:
		c.wantInt(e.X, xt)
		c.wantInt(e.Y, yt)
		return c.setType(e, IntT)
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		c.wantInt(e.X, xt)
		c.wantInt(e.Y, yt)
		return c.setType(e, BoolT)
	case token.EQL, token.NEQ:
		if xt != nil && yt != nil {
			if !(AssignableTo(xt, yt) || AssignableTo(yt, xt)) {
				c.errorf(e.Pos(), "cannot compare %s and %s", xt, yt)
			}
		}
		return c.setType(e, BoolT)
	case token.LAND, token.LOR:
		c.wantBool(e.X, xt)
		c.wantBool(e.Y, yt)
		return c.setType(e, BoolT)
	}
	c.errorf(e.Pos(), "unexpected binary operator %s", e.Op)
	return c.setType(e, IntT)
}

func isString(t Type) bool {
	cl, ok := t.(*Class)
	return ok && cl.Info.Name == "String"
}

func (c *checker) wantInt(e ast.Expr, t Type) {
	if t != nil && t != Basic(IntT) {
		c.errorf(e.Pos(), "operand must be int, got %s", t)
	}
}

func (c *checker) wantBool(e ast.Expr, t Type) {
	if t != nil && t != Basic(BoolT) {
		c.errorf(e.Pos(), "operand must be boolean, got %s", t)
	}
}

func (c *checker) checkFieldAccess(e *ast.FieldAccess) Type {
	// Static field access through a class name.
	if id, ok := e.X.(*ast.Ident); ok {
		if c.lookup(id.Name) == nil && c.curClass.LookupField(id.Name) == nil {
			if ci, isClass := c.info.Classes[id.Name]; isClass {
				c.info.Refs[id] = &Ref{Kind: RefClass, Class: ci}
				c.setType(id, ClassType(ci))
				f := ci.LookupField(e.Name)
				if f == nil || !f.Static {
					c.errorf(e.Pos(), "class %s has no static field %s", ci.Name, e.Name)
					return c.setType(e, IntT)
				}
				c.info.FieldRefs[e] = f
				return c.setType(e, f.Type)
			}
		}
	}
	xt := c.checkExpr(e.X)
	if arr, ok := xt.(*Array); ok {
		_ = arr
		if e.Name == "length" {
			c.info.IsArrayLen[e] = true
			return c.setType(e, IntT)
		}
		c.errorf(e.Pos(), "arrays have no field %s", e.Name)
		return c.setType(e, IntT)
	}
	cl, ok := xt.(*Class)
	if !ok {
		if xt != nil {
			c.errorf(e.Pos(), "cannot access field %s of non-object type %s", e.Name, xt)
		}
		return c.setType(e, IntT)
	}
	f := cl.Info.LookupField(e.Name)
	if f == nil {
		c.errorf(e.Pos(), "class %s has no field %s", cl.Info.Name, e.Name)
		return c.setType(e, IntT)
	}
	c.info.FieldRefs[e] = f
	return c.setType(e, f.Type)
}

var strIntrinsics = map[string]struct {
	kind   Intrinsic
	params []Type
	retInt bool // true: int result; handled specially below
}{
	"length":     {StrLength, nil, true},
	"substring":  {StrSubstring, []Type{IntT, IntT}, false},
	"indexOf":    {StrIndexOf, []Type{nil}, true}, // nil = String param, filled below
	"charAt":     {StrCharAt, []Type{IntT}, true},
	"equals":     {StrEquals, []Type{nil}, false},
	"startsWith": {StrStartsWith, []Type{nil}, false},
}

func (c *checker) checkCall(e *ast.Call) Type {
	strT := ClassType(c.info.String)
	// super(...) constructor call.
	if e.IsSuper {
		if !c.curMethod.IsCtor {
			c.errorf(e.Pos(), "super(...) is only allowed in constructors")
			return c.setType(e, VoidT)
		}
		sup := c.curClass.Super
		if sup == nil {
			c.errorf(e.Pos(), "class %s has no superclass", c.curClass.Name)
			return c.setType(e, VoidT)
		}
		ctor := sup.Ctor
		if ctor == nil {
			ctor = &MethodInfo{Owner: sup, IsCtor: true, Ret: VoidT}
		}
		c.checkArgs(e, ctor.Params)
		c.info.Calls[e] = &CallInfo{Method: ctor, StaticCall: true}
		return c.setType(e, VoidT)
	}
	// Unqualified: builtin, or method of the enclosing class.
	if e.Recv == nil {
		switch e.Name {
		case "print":
			if len(e.Args) != 1 {
				c.errorf(e.Pos(), "print takes exactly 1 argument")
			}
			for _, a := range e.Args {
				c.checkExpr(a)
			}
			c.info.Calls[e] = &CallInfo{Intrinsic: BuiltinPrint}
			return c.setType(e, VoidT)
		case "itoa":
			c.checkArgs(e, []Type{IntT})
			c.info.Calls[e] = &CallInfo{Intrinsic: BuiltinItoa}
			return c.setType(e, strT)
		case "input":
			c.checkArgs(e, nil)
			c.info.Calls[e] = &CallInfo{Intrinsic: BuiltinInput}
			return c.setType(e, strT)
		case "inputInt":
			c.checkArgs(e, nil)
			c.info.Calls[e] = &CallInfo{Intrinsic: BuiltinInputInt}
			return c.setType(e, IntT)
		}
		m := c.curClass.LookupMethod(e.Name)
		if m == nil {
			c.errorf(e.Pos(), "class %s has no method %s", c.curClass.Name, e.Name)
			return c.setType(e, IntT)
		}
		if !m.Static && c.curMethod.Static {
			c.errorf(e.Pos(), "cannot call instance method %s from a static method", e.Name)
		}
		c.checkArgs(e, m.Params)
		c.info.Calls[e] = &CallInfo{Method: m, StaticCall: m.Static}
		return c.setType(e, m.Ret)
	}
	// Static call through a class name.
	if id, ok := e.Recv.(*ast.Ident); ok {
		if c.lookup(id.Name) == nil && c.curClass.LookupField(id.Name) == nil {
			if ci, isClass := c.info.Classes[id.Name]; isClass {
				c.info.Refs[id] = &Ref{Kind: RefClass, Class: ci}
				c.setType(id, ClassType(ci))
				m := ci.LookupMethod(e.Name)
				if m == nil || !m.Static {
					c.errorf(e.Pos(), "class %s has no static method %s", ci.Name, e.Name)
					return c.setType(e, IntT)
				}
				c.checkArgs(e, m.Params)
				c.info.Calls[e] = &CallInfo{Method: m, StaticCall: true}
				return c.setType(e, m.Ret)
			}
		}
	}
	rt := c.checkExpr(e.Recv)
	// String intrinsics.
	if isString(rt) {
		if in, ok := strIntrinsics[e.Name]; ok {
			params := make([]Type, len(in.params))
			for i, p := range in.params {
				if p == nil {
					params[i] = strT
				} else {
					params[i] = p
				}
			}
			c.checkArgs(e, params)
			c.info.Calls[e] = &CallInfo{Intrinsic: in.kind}
			switch in.kind {
			case StrSubstring:
				return c.setType(e, strT)
			case StrEquals, StrStartsWith:
				return c.setType(e, BoolT)
			default:
				return c.setType(e, IntT)
			}
		}
		c.errorf(e.Pos(), "String has no method %s", e.Name)
		return c.setType(e, IntT)
	}
	cl, ok := rt.(*Class)
	if !ok {
		if rt != nil {
			c.errorf(e.Pos(), "cannot call method %s on non-object type %s", e.Name, rt)
		}
		return c.setType(e, IntT)
	}
	m := cl.Info.LookupMethod(e.Name)
	if m == nil {
		c.errorf(e.Pos(), "class %s has no method %s", cl.Info.Name, e.Name)
		return c.setType(e, IntT)
	}
	c.checkArgs(e, m.Params)
	c.info.Calls[e] = &CallInfo{Method: m, StaticCall: m.Static}
	return c.setType(e, m.Ret)
}

func (c *checker) checkArgs(e *ast.Call, params []Type) {
	if len(e.Args) != len(params) {
		c.errorf(e.Pos(), "call to %s has %d arguments, want %d", e.Name, len(e.Args), len(params))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i < len(params) && at != nil && params[i] != nil && !AssignableTo(at, params[i]) {
			c.errorf(a.Pos(), "argument %d of %s has type %s, want %s", i+1, e.Name, at, params[i])
		}
	}
}

func (c *checker) checkNew(e *ast.New) Type {
	ci, ok := c.info.Classes[e.Class]
	if !ok {
		c.errorf(e.Pos(), "cannot instantiate undeclared class %s", e.Class)
		return c.setType(e, ClassType(c.info.Object))
	}
	if ci == c.info.Object || ci == c.info.String {
		// new Object() is allowed (useful as an opaque token); new String() is not.
		if ci == c.info.String {
			c.errorf(e.Pos(), "cannot instantiate String directly")
		}
	}
	var params []Type
	if ci.Ctor != nil {
		params = ci.Ctor.Params
	}
	if len(e.Args) != len(params) {
		c.errorf(e.Pos(), "constructor of %s takes %d arguments, got %d", e.Class, len(params), len(e.Args))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i < len(params) && at != nil && !AssignableTo(at, params[i]) {
			c.errorf(a.Pos(), "constructor argument %d has type %s, want %s", i+1, at, params[i])
		}
	}
	return c.setType(e, ClassType(ci))
}
