package types_test

import "testing"

// Table-driven semantic error cases exercising the checker's
// diagnostic paths.
func TestSemanticErrorTable(t *testing.T) {
	cases := []struct{ name, src, fragment string }{
		{"instantiate-string", `class A { void m() { string s = new String(); } }`, "cannot instantiate String"},
		{"redeclare-predeclared", `class String { }`, "predeclared class"},
		{"compare-mismatch", `class A { void m(int x, boolean b) { boolean r = x == b; } }`, "cannot compare"},
		{"concat-bad-operand", `class A { void m(boolean b) { string s = "x" + b; } }`, "string concatenation"},
		{"call-on-int", `class A { void m(int x) { x.foo(); } }`, "non-object"},
		{"no-such-method", `class B { } class A { void m(B b) { b.nope(); } }`, "no method nope"},
		{"string-no-method", `class A { void m(string s) { s.reverse(); } }`, "String has no method"},
		{"field-on-int", `class A { void m(int x) { int y = x.f; } }`, "non-object"},
		{"no-such-field", `class B { } class A { void m(B b) { int y = b.f; } }`, "no field f"},
		{"arrays-no-field", `class A { void m(int[] a) { int n = a.count; } }`, "arrays have no field"},
		{"static-call-missing", `class K { void inst() { } } class A { void m() { K.inst(); } }`, "no static method"},
		{"arg-count", `class A { int f(int x) { return x; } void m() { int y = f(); } }`, "0 arguments, want 1"},
		{"arg-type", `class A { int f(int x) { return x; } void m() { int y = f(true); } }`, "argument 1"},
		{"ctor-arg-count", `class B { B(int x) { } } class A { void m() { B b = new B(); } }`, "takes 1 arguments"},
		{"new-undeclared", `class A { void m() { Object o = new Zzz(); } }`, "undeclared class Zzz"},
		{"unary-not-int", `class A { void m(int x) { boolean b = !x; } }`, "requires boolean"},
		{"unary-minus-bool", `class A { void m(boolean b) { int x = -b; } }`, "requires int"},
		{"operand-not-int", `class A { void m(boolean b) { int x = b * 2; } }`, "must be int"},
		{"operand-not-bool", `class A { void m(int x) { boolean b = x && true; } }`, "must be boolean"},
		{"assign-mismatch", `class A { void m() { int x = 0; x = "s"; } }`, "cannot assign"},
		{"invalid-target", `class A { int f() { return 1; } void m() { f() = 2; } }`, "invalid assignment target"},
		{"static-changes", `class B { void m() { } } class C extends B { static void m() { } }`, "changes staticness"},
		{"undeclared-super-field", `class A { void m() { q = 2; } }`, "undeclared identifier"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantError(t, c.src, c.fragment)
		})
	}
}
