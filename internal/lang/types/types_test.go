package types_test

import (
	"strings"
	"testing"

	"thinslice/internal/lang/ast"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/parser"
	"thinslice/internal/lang/types"
)

func check(t *testing.T, src string) (*types.Info, error) {
	t.Helper()
	prog, err := parser.ParseProgram(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return types.Check(prog)
}

func mustCheck(t *testing.T, src string) *types.Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check error: %v", err)
	}
	return info
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	found := false
	for _, e := range err.(types.ErrorList) {
		if strings.Contains(e.Msg, fragment) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected error containing %q, got: %v", fragment, err)
	}
}

func TestHierarchyAndPredeclared(t *testing.T) {
	info := mustCheck(t, `
		class A { }
		class B extends A { }
	`)
	a, b := info.Classes["A"], info.Classes["B"]
	if a == nil || b == nil {
		t.Fatal("classes missing")
	}
	if b.Super != a || a.Super != info.Object {
		t.Error("bad hierarchy")
	}
	if !b.IsSubclassOf(info.Object) || a.IsSubclassOf(b) {
		t.Error("IsSubclassOf wrong")
	}
	if info.String.Super != info.Object {
		t.Error("String should extend Object")
	}
}

func TestUndeclaredSuper(t *testing.T) {
	wantError(t, `class A extends Zzz { }`, "undeclared class Zzz")
}

func TestInheritanceCycle(t *testing.T) {
	wantError(t, `class A extends B { } class B extends A { }`, "cycle")
}

func TestFieldInheritance(t *testing.T) {
	info := mustCheck(t, `
		class A { int x; }
		class B extends A { void m() { this.x = 1; } }
	`)
	b := info.Classes["B"]
	f := b.LookupField("x")
	if f == nil || f.Owner.Name != "A" {
		t.Fatalf("field lookup through super failed: %+v", f)
	}
}

func TestMethodOverrideOK(t *testing.T) {
	mustCheck(t, `
		class A { int m(int x) { return x; } }
		class B extends A { int m(int x) { return x + 1; } }
	`)
}

func TestMethodOverrideBadSignature(t *testing.T) {
	wantError(t, `
		class A { int m(int x) { return x; } }
		class B extends A { boolean m(int x) { return true; } }
	`, "different signature")
}

func TestAssignability(t *testing.T) {
	mustCheck(t, `
		class A { }
		class B extends A {
			void m() {
				A a = new B();
				Object o = a;
				o = null;
				Object[] arr = new B[3];
				arr[0] = new B();
			}
		}
	`)
	wantError(t, `
		class A { } class B extends A { }
		class C { void m() { B b = new A(); } }
	`, "cannot initialize")
}

func TestNullComparableToRefs(t *testing.T) {
	mustCheck(t, `
		class A { void m(A p) { if (p == null) { return; } } }
	`)
}

func TestCastRules(t *testing.T) {
	mustCheck(t, `
		class A { } class B extends A {
			void m(Object o, A a) {
				B b = (B) a;
				A up = (A) b;
				B[] arr = (B[]) o;
				string s = (string) o;
			}
		}
	`)
	wantError(t, `
		class A { } class B { }
		class C { void m(A a) { B b = (B) a; } }
	`, "impossible cast")
	wantError(t, `
		class C { void m(int x) { C c = (C) x; } }
	`, "impossible cast")
}

func TestInstanceofChecks(t *testing.T) {
	mustCheck(t, `class A { boolean m(Object o) { return o instanceof A; } }`)
	wantError(t, `class A { boolean m(int x) { return x instanceof A; } }`, "requires a reference")
	wantError(t, `class A { boolean m(A a) { return a instanceof Qq; } }`, "undeclared class")
}

func TestStringIntrinsics(t *testing.T) {
	info := mustCheck(t, `
		class A {
			void m(string s) {
				int n = s.length();
				string t = s.substring(0, n - 1);
				int i = s.indexOf(" ");
				int c = s.charAt(2);
				boolean eq = s.equals(t);
				boolean sw = s.startsWith(t);
				string u = s + t + 42;
			}
		}
	`)
	// Check at least one intrinsic resolution exists.
	foundSub := false
	for _, ci := range info.Calls {
		if ci.Intrinsic == types.StrSubstring {
			foundSub = true
		}
	}
	if !foundSub {
		t.Error("substring intrinsic not recorded")
	}
}

func TestBuiltins(t *testing.T) {
	mustCheck(t, `
		class A {
			void m() {
				print("hi");
				print(42);
				string s = input();
				int n = inputInt();
				string t = itoa(n);
			}
		}
	`)
	wantError(t, `class A { void m() { print(1, 2); } }`, "print takes exactly 1")
}

func TestVirtualCallResolution(t *testing.T) {
	info := mustCheck(t, `
		class A { int m() { return 1; } }
		class B extends A { int m() { return 2; } }
		class C { int go(A a) { return a.m(); } }
	`)
	var found *types.CallInfo
	for call, ci := range info.Calls {
		if call.Name == "m" {
			found = ci
		}
	}
	if found == nil || found.Method == nil || found.Method.Owner.Name != "A" {
		t.Fatalf("a.m() should statically resolve to A.m, got %+v", found)
	}
	if found.StaticCall {
		t.Error("a.m() should be a virtual call")
	}
}

func TestStaticCallThroughClassName(t *testing.T) {
	info := mustCheck(t, `
		class Util { static int sq(int n) { return n * n; } }
		class A { int m() { return Util.sq(3); } }
	`)
	var found *types.CallInfo
	for call, ci := range info.Calls {
		if call.Name == "sq" {
			found = ci
		}
	}
	if found == nil || !found.StaticCall {
		t.Fatalf("Util.sq should be a static call, got %+v", found)
	}
}

func TestStaticFieldAccess(t *testing.T) {
	mustCheck(t, `
		class K { static int LIMIT; }
		class A { int m() { return K.LIMIT; } }
	`)
	wantError(t, `
		class K { int x; }
		class A { int m() { return K.x; } }
	`, "no static field")
}

func TestLocalShadowingAndScoping(t *testing.T) {
	mustCheck(t, `
		class A {
			void m(int x) {
				if (x > 0) {
					int y = 1;
					print(y);
				}
				int y = 2;
				print(y);
			}
		}
	`)
	wantError(t, `
		class A { void m() { int x = 1; int x = 2; } }
	`, "redeclaration")
	wantError(t, `
		class A { void m() { if (true) { int y = 1; } print(y); } }
	`, "undeclared identifier y")
}

func TestThisInStatic(t *testing.T) {
	wantError(t, `
		class A { int f; static int m() { return this.f; } }
	`, "'this' in a static method")
}

func TestInstanceFieldFromStatic(t *testing.T) {
	wantError(t, `
		class A { int f; static int m() { return f; } }
	`, "instance field")
}

func TestSuperCtorCall(t *testing.T) {
	mustCheck(t, `
		class Node { int op; Node(int op) { this.op = op; } }
		class AddNode extends Node { AddNode() { super(1); } }
	`)
	wantError(t, `
		class Node { int op; Node(int op) { this.op = op; } }
		class AddNode extends Node { AddNode() { super(); } }
	`, "arguments")
	wantError(t, `
		class A { void m() { super(); } }
	`, "only allowed in constructors")
}

func TestReturnChecking(t *testing.T) {
	wantError(t, `class A { int m() { return; } }`, "missing return value")
	wantError(t, `class A { void m() { return 1; } }`, "void method cannot return")
	wantError(t, `class A { int m() { return "s"; } }`, "cannot return")
}

func TestConditionsMustBeBool(t *testing.T) {
	wantError(t, `class A { void m(int x) { if (x) { } } }`, "must be boolean")
	wantError(t, `class A { void m(int x) { while (x + 1) { } } }`, "must be boolean")
}

func TestArrayOperations(t *testing.T) {
	mustCheck(t, `
		class A {
			void m() {
				int[] a = new int[10];
				a[0] = 1;
				int n = a.length;
				int v = a[n - 1];
			}
		}
	`)
	wantError(t, `class A { void m(int x) { int v = x[0]; } }`, "cannot index")
	wantError(t, `class A { void m(int[] a) { a[true] = 1; } }`, "index must be int")
	wantError(t, `class A { void m(int[] a) { a.length = 3; } }`, "cannot assign to array length")
}

func TestAssignToClassName(t *testing.T) {
	wantError(t, `class K { } class A { void m() { K = null; } }`, "cannot assign to class name")
}

func TestDuplicateMembers(t *testing.T) {
	wantError(t, `class A { int x; int x; }`, "duplicate field")
	wantError(t, `class A { void m() { } void m() { } }`, "duplicate method")
	wantError(t, `class A { A() { } A() { } }`, "duplicate constructor")
	wantError(t, `class A { } class A { }`, "duplicate class")
}

func TestPreludeLoads(t *testing.T) {
	info, err := loader.Load(map[string]string{"main.mj": `
		class Main {
			static void main() {
				Vector v = new Vector();
				v.add("x");
				string s = (string) v.get(0);
				HashMap m = new HashMap();
				m.put("k", s);
				LinkedList l = new LinkedList();
				l.add(s);
				Iterator it = v.iterator();
				while (it.hasNext()) {
					print((string) it.next());
				}
			}
		}
	`})
	if err != nil {
		t.Fatalf("prelude program failed to check: %v", err)
	}
	for _, name := range []string{"Vector", "HashMap", "LinkedList", "Iterator"} {
		if info.Classes[name] == nil {
			t.Errorf("prelude class %s missing", name)
		}
	}
}

func TestExprTypesRecorded(t *testing.T) {
	info := mustCheck(t, `class A { int m(int x) { return x + 1; } }`)
	count := 0
	for range info.ExprTypes {
		count++
	}
	if count < 3 {
		t.Errorf("only %d expression types recorded", count)
	}
}

func TestDefaultCtorSynthesized(t *testing.T) {
	info := mustCheck(t, `class A { } class B { void m() { A a = new A(); } }`)
	if info.Classes["A"].Ctor == nil {
		t.Fatal("default constructor not synthesized")
	}
}

func TestThrowRequiresObject(t *testing.T) {
	mustCheck(t, `class E { } class A { void m() { throw new E(); } }`)
	wantError(t, `class A { void m() { throw 42; } }`, "requires an object")
}

func TestTypeOfCovariantArrayStore(t *testing.T) {
	mustCheck(t, `
		class A { }
		class B extends A {
			void m() {
				A[] arr = new B[2];
				Object o = arr;
			}
		}
	`)
}

var _ = ast.TypeString // keep import used if assertions change
