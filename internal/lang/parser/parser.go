// Package parser builds an AST from MiniJava-style source text using
// recursive descent with arbitrary lookahead.
package parser

import (
	"fmt"
	"strconv"

	"thinslice/internal/lang/ast"
	"thinslice/internal/lang/lexer"
	"thinslice/internal/lang/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates parse errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msg := l[0].Error()
	if len(l) > 1 {
		msg += fmt.Sprintf(" (and %d more errors)", len(l)-1)
	}
	return msg
}

type parser struct {
	toks   []token.Token
	i      int
	errors ErrorList
}

// ParseFile parses one source file into a list of class declarations.
func ParseFile(file, src string) ([]*ast.ClassDecl, error) {
	toks, lexErrs := lexer.ScanAll(file, src)
	p := &parser{toks: toks}
	for _, e := range lexErrs {
		p.errors = append(p.errors, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	var classes []*ast.ClassDecl
	for !p.atEOF() {
		c := p.parseClass()
		if c != nil {
			classes = append(classes, c)
		}
	}
	if len(p.errors) > 0 {
		return classes, p.errors
	}
	return classes, nil
}

// ParseProgram parses several named sources into one program.
// Sources is a map from file name to content; order of iteration does
// not affect the result because classes are name-resolved later.
func ParseProgram(sources map[string]string) (*ast.Program, error) {
	prog := &ast.Program{}
	var all ErrorList
	// Iterate deterministically for stable error ordering.
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		classes, err := ParseFile(name, sources[name])
		prog.SrcBytes += len(sources[name])
		prog.Classes = append(prog.Classes, classes...)
		if err != nil {
			all = append(all, err.(ErrorList)...)
		}
	}
	if len(all) > 0 {
		return prog, all
	}
	return prog, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (p *parser) cur() token.Token {
	if p.i < len(p.toks) {
		return p.toks[p.i]
	}
	var pos token.Pos
	if len(p.toks) > 0 {
		pos = p.toks[len(p.toks)-1].Pos
	}
	return token.Token{Kind: token.EOF, Pos: pos}
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

// peekKind returns the kind of the token n positions ahead (0 = current).
func (p *parser) peekKind(n int) token.Kind {
	if p.i+n < len(p.toks) {
		return p.toks[p.i+n].Kind
	}
	return token.EOF
}

func (p *parser) atEOF() bool { return p.i >= len(p.toks) }

func (p *parser) advance() token.Token {
	t := p.cur()
	if p.i < len(p.toks) {
		p.i++
	}
	return t
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	p.errors = append(p.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

// sync skips tokens until a likely statement/declaration boundary, to
// recover from errors without cascading.
func (p *parser) sync() {
	for !p.atEOF() {
		switch p.cur().Kind {
		case token.SEMI:
			p.advance()
			return
		case token.RBRACE, token.CLASS, token.IF, token.WHILE, token.FOR,
			token.RETURN, token.THROW, token.ASSERT:
			return
		}
		p.advance()
	}
}

func (p *parser) parseClass() *ast.ClassDecl {
	if !p.at(token.CLASS) {
		p.errorf(p.cur().Pos, "expected 'class', found %s", p.cur())
		p.advance()
		return nil
	}
	p.advance()
	nameTok := p.expect(token.IDENT)
	c := &ast.ClassDecl{NamePos: nameTok.Pos, Name: nameTok.Lit}
	if p.at(token.EXTENDS) {
		p.advance()
		c.Super = p.expect(token.IDENT).Lit
	}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.atEOF() {
		before := p.i
		p.parseMember(c)
		if p.i == before {
			// parseMember's error recovery stopped at a token it does not
			// consume (e.g. a stray statement keyword); skip it so the
			// loop always makes progress.
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return c
}

func (p *parser) parseMember(c *ast.ClassDecl) {
	static := false
	final := false
	for p.at(token.STATIC) || p.at(token.FINAL) {
		if p.advance().Kind == token.STATIC {
			static = true
		} else {
			final = true
		}
	}
	// Constructor: ClassName followed by '('.
	if p.at(token.IDENT) && p.cur().Lit == c.Name && p.peekKind(1) == token.LPAREN {
		nameTok := p.advance()
		m := &ast.MethodDecl{
			NamePos: nameTok.Pos, Name: nameTok.Lit, IsCtor: true,
			Params: p.parseParams(),
		}
		m.Body = p.parseBlock()
		c.Methods = append(c.Methods, m)
		return
	}
	typ := p.parseType()
	if typ == nil {
		p.sync()
		return
	}
	nameTok := p.expect(token.IDENT)
	if p.at(token.LPAREN) {
		m := &ast.MethodDecl{
			NamePos: nameTok.Pos, Static: static, Ret: typ,
			Name: nameTok.Lit, Params: p.parseParams(),
		}
		m.Body = p.parseBlock()
		c.Methods = append(c.Methods, m)
		return
	}
	// Field declaration (no initializers on fields; constructors set them).
	c.Fields = append(c.Fields, &ast.FieldDecl{
		NamePos: nameTok.Pos, Static: static, Final: final, Type: typ, Name: nameTok.Lit,
	})
	p.expect(token.SEMI)
}

func (p *parser) parseParams() []*ast.Param {
	p.expect(token.LPAREN)
	var params []*ast.Param
	for !p.at(token.RPAREN) && !p.atEOF() {
		if len(params) > 0 {
			p.expect(token.COMMA)
		}
		typ := p.parseType()
		if typ == nil {
			p.sync()
			break
		}
		nameTok := p.expect(token.IDENT)
		params = append(params, &ast.Param{NamePos: nameTok.Pos, Type: typ, Name: nameTok.Lit})
	}
	p.expect(token.RPAREN)
	return params
}

// parseType parses a type expression, or returns nil with an error
// recorded if the current token cannot start a type.
func (p *parser) parseType() ast.TypeExpr {
	var base ast.TypeExpr
	switch t := p.cur(); t.Kind {
	case token.INTK:
		p.advance()
		base = &ast.PrimType{KindPos: t.Pos, Kind: ast.PrimInt}
	case token.BOOLK:
		p.advance()
		base = &ast.PrimType{KindPos: t.Pos, Kind: ast.PrimBool}
	case token.STRK:
		p.advance()
		base = &ast.PrimType{KindPos: t.Pos, Kind: ast.PrimString}
	case token.VOID:
		p.advance()
		base = &ast.PrimType{KindPos: t.Pos, Kind: ast.PrimVoid}
	case token.IDENT:
		p.advance()
		base = &ast.NamedType{NamePos: t.Pos, Name: t.Lit}
	default:
		p.errorf(t.Pos, "expected type, found %s", t)
		return nil
	}
	for p.at(token.LBRACK) && p.peekKind(1) == token.RBRACK {
		p.advance()
		p.advance()
		base = &ast.ArrayType{Elem: base}
	}
	return base
}

func (p *parser) parseBlock() *ast.Block {
	lb := p.expect(token.LBRACE)
	b := &ast.Block{LbracePos: lb.Pos}
	for !p.at(token.RBRACE) && !p.atEOF() {
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(token.RBRACE)
	return b
}

// typeStartsDecl reports whether the token stream at the current
// position begins a local variable declaration rather than an
// expression statement.
func (p *parser) typeStartsDecl() bool {
	switch p.cur().Kind {
	case token.INTK, token.BOOLK, token.STRK:
		return true
	case token.IDENT:
		// "Foo x", "Foo[] x", "Foo[][] x" are declarations;
		// "Foo[i]" or "Foo.m()" or "Foo = e" are expressions.
		j := 1
		for p.peekKind(j) == token.LBRACK && p.peekKind(j+1) == token.RBRACK {
			j += 2
		}
		return p.peekKind(j) == token.IDENT
	}
	return false
}

func (p *parser) parseStmt() ast.Stmt {
	switch t := p.cur(); t.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.IF:
		p.advance()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		s := &ast.If{IfPos: t.Pos, Cond: cond, Then: p.parseStmt()}
		if p.at(token.ELSE) {
			p.advance()
			s.Else = p.parseStmt()
		}
		return s
	case token.WHILE:
		p.advance()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.While{WhilePos: t.Pos, Cond: cond, Body: p.parseStmt()}
	case token.FOR:
		return p.parseFor()
	case token.RETURN:
		p.advance()
		s := &ast.Return{RetPos: t.Pos}
		if !p.at(token.SEMI) {
			s.Value = p.parseExpr()
		}
		p.expect(token.SEMI)
		return s
	case token.THROW:
		p.advance()
		s := &ast.Throw{ThrowPos: t.Pos, X: p.parseExpr()}
		p.expect(token.SEMI)
		return s
	case token.ASSERT:
		p.advance()
		p.expect(token.LPAREN)
		s := &ast.Assert{AssertPos: t.Pos, Cond: p.parseExpr()}
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return s
	case token.BREAK:
		p.advance()
		p.expect(token.SEMI)
		return &ast.Break{BreakPos: t.Pos}
	case token.CONTINUE:
		p.advance()
		p.expect(token.SEMI)
		return &ast.Continue{ContinuePos: t.Pos}
	case token.SEMI:
		p.advance()
		return nil
	}
	if p.typeStartsDecl() {
		s := p.parseVarDecl()
		p.expect(token.SEMI)
		return s
	}
	s := p.parseSimpleStmt()
	p.expect(token.SEMI)
	return s
}

func (p *parser) parseVarDecl() ast.Stmt {
	typ := p.parseType()
	nameTok := p.expect(token.IDENT)
	d := &ast.VarDecl{NamePos: nameTok.Pos, Type: typ, Name: nameTok.Lit}
	if p.at(token.ASSIGN) {
		p.advance()
		d.Init = p.parseExpr()
	}
	return d
}

// parseSimpleStmt parses assignments, op-assignments, ++/--, and call
// statements (everything that can appear in a for-init/post position).
func (p *parser) parseSimpleStmt() ast.Stmt {
	lhs := p.parseExpr()
	switch t := p.cur(); t.Kind {
	case token.ASSIGN:
		p.advance()
		return &ast.Assign{AssignPos: t.Pos, LHS: lhs, RHS: p.parseExpr()}
	case token.PLUSEQ, token.MINUSEQ:
		p.advance()
		op := token.ADD
		if t.Kind == token.MINUSEQ {
			op = token.SUB
		}
		rhs := p.parseExpr()
		return &ast.Assign{AssignPos: t.Pos, LHS: lhs,
			RHS: &ast.Binary{OpPos: t.Pos, Op: op, X: lhs, Y: rhs}}
	case token.INCR, token.DECR:
		p.advance()
		op := token.ADD
		if t.Kind == token.DECR {
			op = token.SUB
		}
		one := &ast.IntLit{LitPos: t.Pos, Value: 1}
		return &ast.Assign{AssignPos: t.Pos, LHS: lhs,
			RHS: &ast.Binary{OpPos: t.Pos, Op: op, X: lhs, Y: one}}
	}
	if _, ok := lhs.(*ast.Call); !ok {
		if _, ok := lhs.(*ast.New); !ok {
			p.errorf(lhs.Pos(), "expression statement must be a call")
		}
	}
	return &ast.ExprStmt{X: lhs}
}

func (p *parser) parseFor() ast.Stmt {
	forTok := p.advance()
	p.expect(token.LPAREN)
	var init ast.Stmt
	if !p.at(token.SEMI) {
		if p.typeStartsDecl() {
			init = p.parseVarDecl()
		} else {
			init = p.parseSimpleStmt()
		}
	}
	p.expect(token.SEMI)
	var cond ast.Expr
	if !p.at(token.SEMI) {
		cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	var post ast.Stmt
	if !p.at(token.RPAREN) {
		post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	return &ast.For{ForPos: forTok.Pos, Init: init, Cond: cond, Post: post, Body: p.parseStmt()}
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		t := p.cur()
		prec := t.Kind.Precedence()
		if prec < minPrec || prec == 0 {
			return x
		}
		p.advance()
		if t.Kind == token.INSTANCEOF {
			cls := p.expect(token.IDENT)
			x = &ast.InstanceOf{X: x, Class: cls.Lit}
			continue
		}
		y := p.parseBinary(prec + 1)
		x = &ast.Binary{OpPos: t.Pos, Op: t.Kind, X: x, Y: y}
	}
}

// castLookahead reports whether the tokens at the current position
// (which must be LPAREN) form a cast "(T)" or "(T[])" followed by an
// operand, rather than a parenthesized expression.
func (p *parser) castLookahead() bool {
	if !p.at(token.LPAREN) {
		return false
	}
	j := 1
	switch p.peekKind(j) {
	case token.INTK, token.BOOLK, token.STRK:
		// (int) e is always a cast.
	case token.IDENT:
		// Ambiguous: "(x)" could be a parenthesized identifier.
	default:
		return false
	}
	isIdent := p.peekKind(j) == token.IDENT
	j++
	sawBrackets := false
	for p.peekKind(j) == token.LBRACK && p.peekKind(j+1) == token.RBRACK {
		j += 2
		sawBrackets = true
	}
	if p.peekKind(j) != token.RPAREN {
		return false
	}
	if !isIdent || sawBrackets {
		return true
	}
	// "(Foo) <operand>": only a cast if followed by something that can
	// start a unary operand but cannot continue a binary expression.
	switch p.peekKind(j + 1) {
	case token.IDENT, token.INT, token.STRING, token.CHAR, token.LPAREN,
		token.THIS, token.NEW, token.NULL, token.TRUE, token.FALSE, token.NOT:
		return true
	}
	return false
}

func (p *parser) parseUnary() ast.Expr {
	switch t := p.cur(); t.Kind {
	case token.NOT:
		p.advance()
		return &ast.Unary{OpPos: t.Pos, Op: token.NOT, X: p.parseUnary()}
	case token.SUB:
		p.advance()
		return &ast.Unary{OpPos: t.Pos, Op: token.SUB, X: p.parseUnary()}
	}
	if p.castLookahead() {
		lp := p.advance()
		typ := p.parseType()
		p.expect(token.RPAREN)
		return &ast.Cast{LparenPos: lp.Pos, Type: typ, X: p.parseUnary()}
	}
	return p.parsePostfix(p.parsePrimary())
}

func (p *parser) parsePostfix(x ast.Expr) ast.Expr {
	for {
		switch t := p.cur(); t.Kind {
		case token.DOT:
			p.advance()
			nameTok := p.expect(token.IDENT)
			if p.at(token.LPAREN) {
				x = &ast.Call{Recv: x, NamePos: nameTok.Pos, Name: nameTok.Lit, Args: p.parseArgs()}
			} else {
				x = &ast.FieldAccess{X: x, NamePos: nameTok.Pos, Name: nameTok.Lit}
			}
		case token.LBRACK:
			p.advance()
			i := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.Index{X: x, I: i}
		default:
			return x
		}
	}
}

func (p *parser) parseArgs() []ast.Expr {
	p.expect(token.LPAREN)
	var args []ast.Expr
	for !p.at(token.RPAREN) && !p.atEOF() {
		if len(args) > 0 {
			p.expect(token.COMMA)
		}
		args = append(args, p.parseExpr())
	}
	p.expect(token.RPAREN)
	return args
}

func (p *parser) parsePrimary() ast.Expr {
	switch t := p.cur(); t.Kind {
	case token.INT:
		p.advance()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.CHAR:
		p.advance()
		var v int64
		for _, r := range t.Lit {
			v = int64(r)
			break
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.STRING:
		p.advance()
		return &ast.StrLit{LitPos: t.Pos, Value: t.Lit}
	case token.TRUE:
		p.advance()
		return &ast.BoolLit{LitPos: t.Pos, Value: true}
	case token.FALSE:
		p.advance()
		return &ast.BoolLit{LitPos: t.Pos, Value: false}
	case token.NULL:
		p.advance()
		return &ast.NullLit{LitPos: t.Pos}
	case token.THIS:
		p.advance()
		return &ast.This{ThisPos: t.Pos}
	case token.SUPER:
		p.advance()
		if p.at(token.LPAREN) {
			return &ast.Call{NamePos: t.Pos, Name: "super", Args: p.parseArgs(), IsSuper: true}
		}
		p.errorf(t.Pos, "'super' is only supported as a constructor call super(...)")
		return &ast.NullLit{LitPos: t.Pos}
	case token.NEW:
		p.advance()
		typ := p.parseTypeForNew(t.Pos)
		return typ
	case token.IDENT:
		p.advance()
		if p.at(token.LPAREN) {
			return &ast.Call{NamePos: t.Pos, Name: t.Lit, Args: p.parseArgs()}
		}
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.LPAREN:
		p.advance()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	}
	t := p.cur()
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.advance()
	return &ast.NullLit{LitPos: t.Pos}
}

// parseTypeForNew parses the remainder of a 'new' expression:
// new C(args), new T[len], or new T[len][] (unsupported multi-dim
// allocations report an error).
func (p *parser) parseTypeForNew(newPos token.Pos) ast.Expr {
	var elem ast.TypeExpr
	switch t := p.cur(); t.Kind {
	case token.INTK:
		p.advance()
		elem = &ast.PrimType{KindPos: t.Pos, Kind: ast.PrimInt}
	case token.BOOLK:
		p.advance()
		elem = &ast.PrimType{KindPos: t.Pos, Kind: ast.PrimBool}
	case token.STRK:
		p.advance()
		elem = &ast.PrimType{KindPos: t.Pos, Kind: ast.PrimString}
	case token.IDENT:
		p.advance()
		if p.at(token.LPAREN) {
			return &ast.New{NewPos: newPos, Class: t.Lit, Args: p.parseArgs()}
		}
		elem = &ast.NamedType{NamePos: t.Pos, Name: t.Lit}
	default:
		p.errorf(t.Pos, "expected type after 'new', found %s", t)
		return &ast.NullLit{LitPos: newPos}
	}
	p.expect(token.LBRACK)
	length := p.parseExpr()
	p.expect(token.RBRACK)
	for p.at(token.LBRACK) && p.peekKind(1) == token.RBRACK {
		p.advance()
		p.advance()
		elem = &ast.ArrayType{Elem: elem}
	}
	return &ast.NewArray{NewPos: newPos, Elem: elem, Len: length}
}
