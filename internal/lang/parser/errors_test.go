package parser

import (
	"strings"
	"testing"
)

// wantParseError asserts parsing src fails with a message containing
// fragment.
func wantParseError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := ParseFile("t.mj", src)
	if err == nil {
		t.Fatalf("expected error containing %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		// ErrorList prints only the first; search the whole list.
		found := false
		for _, e := range err.(ErrorList) {
			if strings.Contains(e.Msg, fragment) {
				found = true
			}
		}
		if !found {
			t.Fatalf("error %v does not mention %q", err, fragment)
		}
	}
}

func TestErrorMissingClassKeyword(t *testing.T) {
	wantParseError(t, `int x;`, "expected 'class'")
}

func TestErrorBadMemberType(t *testing.T) {
	wantParseError(t, `class A { ; }`, "expected type")
}

func TestErrorUnclosedClass(t *testing.T) {
	wantParseError(t, `class A { void m() { }`, "expected }")
}

func TestErrorBadExpression(t *testing.T) {
	wantParseError(t, `class A { void m() { int x = ; } }`, "expected expression")
}

func TestErrorExprStatementMustBeCall(t *testing.T) {
	wantParseError(t, `class A { void m() { x + 1; } }`, "must be a call")
}

func TestErrorSuperOutsideCall(t *testing.T) {
	wantParseError(t, `class A { void m() { Object o = super; } }`, "super")
}

func TestErrorBadNewTarget(t *testing.T) {
	wantParseError(t, `class A { void m() { Object o = new ; } }`, "expected type after 'new'")
}

func TestErrorMissingSemicolon(t *testing.T) {
	wantParseError(t, `class A { void m() { int x = 1 } }`, "expected ;")
}

func TestErrorBadParamList(t *testing.T) {
	wantParseError(t, `class A { void m(int) { } }`, "expected IDENT")
}

func TestErrorListFormatting(t *testing.T) {
	_, err := ParseFile("t.mj", `class A { void m() { int = ; bool = ; } }`)
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "more error") && len(err.(ErrorList)) > 1 {
		t.Errorf("multi-error message should say how many more: %q", msg)
	}
	if (ErrorList{}).Error() != "no errors" {
		t.Error("empty list formatting wrong")
	}
}

func TestParseProgramAggregatesAcrossFiles(t *testing.T) {
	prog, err := ParseProgram(map[string]string{
		"b.mj": `class B { }`,
		"a.mj": `class A { broken`,
	})
	if err == nil {
		t.Fatal("expected errors from a.mj")
	}
	if prog.Class("B") == nil {
		t.Error("valid file's classes must survive")
	}
}

func TestIntLiteralOverflow(t *testing.T) {
	wantParseError(t, `class A { void m() { int x = 99999999999999999999; } }`, "invalid integer literal")
}

func TestRecoveryAcrossMembers(t *testing.T) {
	classes, err := ParseFile("t.mj", `class A {
		void broken( { }
		void ok() { print(1); }
	}`)
	if err == nil {
		t.Fatal("expected errors")
	}
	if len(classes) != 1 {
		t.Fatalf("class lost during recovery")
	}
	found := false
	for _, m := range classes[0].Methods {
		if m.Name == "ok" {
			found = true
		}
	}
	if !found {
		t.Error("recovery failed to reach the next member")
	}
}
