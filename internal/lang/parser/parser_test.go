package parser

import (
	"testing"

	"thinslice/internal/lang/ast"
	"thinslice/internal/lang/token"
)

func parseOne(t *testing.T, src string) *ast.ClassDecl {
	t.Helper()
	classes, err := ParseFile("t.mj", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if len(classes) != 1 {
		t.Fatalf("got %d classes, want 1", len(classes))
	}
	return classes[0]
}

// parseBody parses a method body wrapped in a scaffold class.
func parseBody(t *testing.T, body string) []ast.Stmt {
	t.Helper()
	c := parseOne(t, "class T { void m() { "+body+" } }")
	return c.Methods[0].Body.Stmts
}

func TestClassHeader(t *testing.T) {
	c := parseOne(t, "class A extends B { }")
	if c.Name != "A" || c.Super != "B" {
		t.Errorf("got name=%s super=%s", c.Name, c.Super)
	}
}

func TestFieldsAndMethods(t *testing.T) {
	c := parseOne(t, `class A {
		int x;
		static boolean flag;
		final int op;
		Object[] elems;
		void m(int a, string b) { }
		static int sq(int n) { return n * n; }
	}`)
	if len(c.Fields) != 4 {
		t.Fatalf("got %d fields", len(c.Fields))
	}
	if !c.Fields[1].Static {
		t.Error("flag should be static")
	}
	if !c.Fields[2].Final {
		t.Error("op should be final")
	}
	if _, ok := c.Fields[3].Type.(*ast.ArrayType); !ok {
		t.Errorf("elems should have array type, got %T", c.Fields[3].Type)
	}
	if len(c.Methods) != 2 {
		t.Fatalf("got %d methods", len(c.Methods))
	}
	if len(c.Methods[0].Params) != 2 {
		t.Errorf("m has %d params", len(c.Methods[0].Params))
	}
	if !c.Methods[1].Static {
		t.Error("sq should be static")
	}
}

func TestConstructor(t *testing.T) {
	c := parseOne(t, `class Node { int op; Node(int op) { this.op = op; } }`)
	if len(c.Methods) != 1 || !c.Methods[0].IsCtor {
		t.Fatalf("constructor not recognized: %+v", c.Methods)
	}
}

func TestSuperCall(t *testing.T) {
	c := parseOne(t, `class AddNode extends Node { AddNode() { super(1); } }`)
	body := c.Methods[0].Body.Stmts
	es, ok := body[0].(*ast.ExprStmt)
	if !ok {
		t.Fatalf("got %T", body[0])
	}
	call, ok := es.X.(*ast.Call)
	if !ok || !call.IsSuper {
		t.Fatalf("got %#v", es.X)
	}
}

func TestVarDeclVsExprDisambiguation(t *testing.T) {
	stmts := parseBody(t, `
		Foo x = null;
		Foo[] ys = null;
		x = null;
		arr[i] = v;
	`)
	if _, ok := stmts[0].(*ast.VarDecl); !ok {
		t.Errorf("stmt 0: got %T, want VarDecl", stmts[0])
	}
	if d, ok := stmts[1].(*ast.VarDecl); !ok {
		t.Errorf("stmt 1: got %T, want VarDecl", stmts[1])
	} else if _, isArr := d.Type.(*ast.ArrayType); !isArr {
		t.Errorf("stmt 1: type %T, want array", d.Type)
	}
	if _, ok := stmts[2].(*ast.Assign); !ok {
		t.Errorf("stmt 2: got %T, want Assign", stmts[2])
	}
	if a, ok := stmts[3].(*ast.Assign); !ok {
		t.Errorf("stmt 3: got %T, want Assign", stmts[3])
	} else if _, isIdx := a.LHS.(*ast.Index); !isIdx {
		t.Errorf("stmt 3: LHS %T, want Index", a.LHS)
	}
}

func TestCastVsParen(t *testing.T) {
	stmts := parseBody(t, `
		Object o = null;
		String s = (String) o;
		int x = (y);
		Foo[] a = (Foo[]) o;
		int z = (int) w;
	`)
	if d := stmts[1].(*ast.VarDecl); true {
		if _, ok := d.Init.(*ast.Cast); !ok {
			t.Errorf("(String) o parsed as %T, want Cast", d.Init)
		}
	}
	if d := stmts[2].(*ast.VarDecl); true {
		if _, ok := d.Init.(*ast.Ident); !ok {
			t.Errorf("(y) parsed as %T, want Ident", d.Init)
		}
	}
	if d := stmts[3].(*ast.VarDecl); true {
		if _, ok := d.Init.(*ast.Cast); !ok {
			t.Errorf("(Foo[]) o parsed as %T, want Cast", d.Init)
		}
	}
	if d := stmts[4].(*ast.VarDecl); true {
		if _, ok := d.Init.(*ast.Cast); !ok {
			t.Errorf("(int) w parsed as %T, want Cast", d.Init)
		}
	}
}

func TestPrecedence(t *testing.T) {
	stmts := parseBody(t, `x = a + b * c;`)
	a := stmts[0].(*ast.Assign)
	add, ok := a.RHS.(*ast.Binary)
	if !ok || add.Op != token.ADD {
		t.Fatalf("top is %#v, want +", a.RHS)
	}
	mul, ok := add.Y.(*ast.Binary)
	if !ok || mul.Op != token.MUL {
		t.Fatalf("rhs of + is %#v, want *", add.Y)
	}
}

func TestLogicalPrecedence(t *testing.T) {
	stmts := parseBody(t, `b = x < y && p || q;`)
	a := stmts[0].(*ast.Assign)
	or, ok := a.RHS.(*ast.Binary)
	if !ok || or.Op != token.LOR {
		t.Fatalf("top is %#v, want ||", a.RHS)
	}
	and, ok := or.X.(*ast.Binary)
	if !ok || and.Op != token.LAND {
		t.Fatalf("lhs of || is %#v, want &&", or.X)
	}
	lss, ok := and.X.(*ast.Binary)
	if !ok || lss.Op != token.LSS {
		t.Fatalf("lhs of && is %#v, want <", and.X)
	}
}

func TestIncrementDesugars(t *testing.T) {
	stmts := parseBody(t, `i++; j += 2; k--;`)
	for i, s := range stmts {
		a, ok := s.(*ast.Assign)
		if !ok {
			t.Fatalf("stmt %d: got %T", i, s)
		}
		if _, ok := a.RHS.(*ast.Binary); !ok {
			t.Errorf("stmt %d: RHS %T, want Binary", i, a.RHS)
		}
	}
}

func TestForLoop(t *testing.T) {
	stmts := parseBody(t, `for (int i = 0; i < n; i++) { print(i); }`)
	f, ok := stmts[0].(*ast.For)
	if !ok {
		t.Fatalf("got %T", stmts[0])
	}
	if _, ok := f.Init.(*ast.VarDecl); !ok {
		t.Errorf("init is %T", f.Init)
	}
	if f.Cond == nil || f.Post == nil {
		t.Error("missing cond or post")
	}
}

func TestForLoopEmptyClauses(t *testing.T) {
	stmts := parseBody(t, `for (;;) { break; }`)
	f := stmts[0].(*ast.For)
	if f.Init != nil || f.Cond != nil || f.Post != nil {
		t.Errorf("clauses should be nil: %+v", f)
	}
}

func TestIfElseChain(t *testing.T) {
	stmts := parseBody(t, `if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }`)
	s := stmts[0].(*ast.If)
	inner, ok := s.Else.(*ast.If)
	if !ok {
		t.Fatalf("else branch is %T", s.Else)
	}
	if inner.Else == nil {
		t.Error("inner else missing")
	}
}

func TestNewForms(t *testing.T) {
	stmts := parseBody(t, `
		Vector v = new Vector();
		Object[] a = new Object[10];
		int[] b = new int[n + 1];
	`)
	if _, ok := stmts[0].(*ast.VarDecl).Init.(*ast.New); !ok {
		t.Error("new Vector() not a New")
	}
	na, ok := stmts[1].(*ast.VarDecl).Init.(*ast.NewArray)
	if !ok {
		t.Fatal("new Object[10] not a NewArray")
	}
	if _, ok := na.Elem.(*ast.NamedType); !ok {
		t.Errorf("elem type %T", na.Elem)
	}
}

func TestCallsAndChaining(t *testing.T) {
	stmts := parseBody(t, `x = v.get(i).foo(1, 2); helper(a); C.stat();`)
	a := stmts[0].(*ast.Assign)
	outer, ok := a.RHS.(*ast.Call)
	if !ok || outer.Name != "foo" || len(outer.Args) != 2 {
		t.Fatalf("got %#v", a.RHS)
	}
	if inner, ok := outer.Recv.(*ast.Call); !ok || inner.Name != "get" {
		t.Fatalf("receiver %#v", outer.Recv)
	}
	unq := stmts[1].(*ast.ExprStmt).X.(*ast.Call)
	if unq.Recv != nil || unq.Name != "helper" {
		t.Fatalf("got %#v", unq)
	}
	st := stmts[2].(*ast.ExprStmt).X.(*ast.Call)
	if st.Recv == nil {
		t.Fatal("C.stat() lost its receiver")
	}
}

func TestInstanceof(t *testing.T) {
	stmts := parseBody(t, `b = x instanceof Foo && y;`)
	a := stmts[0].(*ast.Assign)
	and := a.RHS.(*ast.Binary)
	if _, ok := and.X.(*ast.InstanceOf); !ok {
		t.Fatalf("lhs %#v", and.X)
	}
}

func TestThrowAssert(t *testing.T) {
	stmts := parseBody(t, `assert(x == 1); throw new Error();`)
	if _, ok := stmts[0].(*ast.Assert); !ok {
		t.Errorf("got %T", stmts[0])
	}
	if _, ok := stmts[1].(*ast.Throw); !ok {
		t.Errorf("got %T", stmts[1])
	}
}

func TestErrorRecovery(t *testing.T) {
	classes, err := ParseFile("t.mj", `class A { void m() { x = ; y = 2; } } class B { }`)
	if err == nil {
		t.Fatal("expected parse errors")
	}
	if len(classes) != 2 {
		t.Fatalf("recovery failed: got %d classes, want 2", len(classes))
	}
}

func TestFieldAccessChain(t *testing.T) {
	stmts := parseBody(t, `x = this.a.b.c;`)
	a := stmts[0].(*ast.Assign)
	fc, ok := a.RHS.(*ast.FieldAccess)
	if !ok || fc.Name != "c" {
		t.Fatalf("got %#v", a.RHS)
	}
	fb, ok := fc.X.(*ast.FieldAccess)
	if !ok || fb.Name != "b" {
		t.Fatalf("got %#v", fc.X)
	}
}

func TestArrayLength(t *testing.T) {
	stmts := parseBody(t, `n = arr.length;`)
	a := stmts[0].(*ast.Assign)
	fc, ok := a.RHS.(*ast.FieldAccess)
	if !ok || fc.Name != "length" {
		t.Fatalf("got %#v", a.RHS)
	}
}

func TestStatementPositionsSurvive(t *testing.T) {
	src := "class A {\n  void m() {\n    int x = 1;\n  }\n}"
	classes, err := ParseFile("pos.mj", src)
	if err != nil {
		t.Fatal(err)
	}
	d := classes[0].Methods[0].Body.Stmts[0].(*ast.VarDecl)
	if d.Pos().Line != 3 || d.Pos().File != "pos.mj" {
		t.Errorf("got pos %v", d.Pos())
	}
}

func TestUnaryChains(t *testing.T) {
	stmts := parseBody(t, `b = !!p; n = -(-m);`)
	a := stmts[0].(*ast.Assign)
	u1 := a.RHS.(*ast.Unary)
	if _, ok := u1.X.(*ast.Unary); !ok {
		t.Errorf("got %#v", u1.X)
	}
}
