// Package prelude provides the in-language standard container library
// that analyzed programs link against: Vector, HashMap, LinkedList, and
// an Iterator. The containers are written in the MiniJava-style source
// language itself so that, exactly as in Java, their internals pollute
// traditional slices and exercise the object-sensitive handling of
// "key collections classes" that the thin slicing paper relies on
// (paper §6.1, citing Milanova et al. [16]).
package prelude

// FileName is the pseudo file name under which the prelude is parsed.
const FileName = "<prelude>"

// ContainerClasses lists the collection classes that the pointer
// analysis treats object-sensitively in its precise configuration
// (the paper's ObjSens setting).
var ContainerClasses = []string{
	"Vector", "HashMap", "HashMapEntry", "LinkedList", "ListNode", "Iterator",
}

// Source is the prelude source text.
const Source = `
// Growable array-backed container, modeled on java.util.Vector.
class Vector {
    Object[] elems;
    int count;
    Vector() {
        this.elems = new Object[10];
        this.count = 0;
    }
    void add(Object p) {
        this.ensure(this.count + 1);
        this.elems[this.count] = p;
        this.count = this.count + 1;
    }
    Object get(int ind) {
        return this.elems[ind];
    }
    void set(int ind, Object p) {
        this.elems[ind] = p;
    }
    Object removeLast() {
        this.count = this.count - 1;
        Object r = this.elems[this.count];
        this.elems[this.count] = null;
        return r;
    }
    int size() {
        return this.count;
    }
    boolean isEmpty() {
        return this.count == 0;
    }
    void ensure(int cap) {
        if (cap > this.elems.length) {
            Object[] bigger = new Object[cap * 2];
            int i = 0;
            while (i < this.count) {
                bigger[i] = this.elems[i];
                i = i + 1;
            }
            this.elems = bigger;
        }
    }
    Iterator iterator() {
        Iterator it = new Iterator(this);
        return it;
    }
}

// Index-based iterator over a Vector.
class Iterator {
    Vector src;
    int pos;
    Iterator(Vector v) {
        this.src = v;
        this.pos = 0;
    }
    boolean hasNext() {
        return this.pos < this.src.size();
    }
    Object next() {
        Object r = this.src.get(this.pos);
        this.pos = this.pos + 1;
        return r;
    }
}

// Separate-chaining hash map with string keys.
class HashMapEntry {
    string key;
    Object value;
    HashMapEntry nxt;
    HashMapEntry(string k, Object v, HashMapEntry n) {
        this.key = k;
        this.value = v;
        this.nxt = n;
    }
}

class HashMap {
    HashMapEntry[] buckets;
    int count;
    HashMap() {
        this.buckets = new HashMapEntry[16];
        this.count = 0;
    }
    int hash(string key) {
        int h = 0;
        int i = 0;
        while (i < key.length()) {
            h = h * 31 + key.charAt(i);
            i = i + 1;
        }
        if (h < 0) {
            h = 0 - h;
        }
        return h % this.buckets.length;
    }
    void put(string key, Object value) {
        int b = this.hash(key);
        HashMapEntry e = this.buckets[b];
        while (e != null) {
            if (e.key.equals(key)) {
                e.value = value;
                return;
            }
            e = e.nxt;
        }
        HashMapEntry fresh = new HashMapEntry(key, value, this.buckets[b]);
        this.buckets[b] = fresh;
        this.count = this.count + 1;
    }
    Object get(string key) {
        int b = this.hash(key);
        HashMapEntry e = this.buckets[b];
        while (e != null) {
            if (e.key.equals(key)) {
                return e.value;
            }
            e = e.nxt;
        }
        return null;
    }
    boolean containsKey(string key) {
        Object v = this.get(key);
        return !(v == null);
    }
    int size() {
        return this.count;
    }
}

// Singly linked list.
class ListNode {
    Object item;
    ListNode nxt;
    ListNode(Object v) {
        this.item = v;
        this.nxt = null;
    }
}

// Byte-stream handle with an open/closed protocol, modeled on the
// java.io streams: read and write require an open handle and close is
// one-shot. The typestate checkers treat close() as the protocol
// transition regardless of class, but Stream is the canonical library
// carrier of the protocol.
class Stream {
    int fd;
    boolean closed;
    Stream(int fd) {
        this.fd = fd;
        this.closed = false;
    }
    boolean isClosed() {
        return this.closed;
    }
    int read() {
        return this.fd;
    }
    void write(int b) {
        this.fd = b;
    }
    void close() {
        this.closed = true;
    }
}

class LinkedList {
    ListNode head;
    ListNode tail;
    int count;
    LinkedList() {
        this.head = null;
        this.tail = null;
        this.count = 0;
    }
    void add(Object v) {
        ListNode n = new ListNode(v);
        if (this.tail == null) {
            this.head = n;
        } else {
            this.tail.nxt = n;
        }
        this.tail = n;
        this.count = this.count + 1;
    }
    Object get(int ind) {
        ListNode n = this.head;
        int i = 0;
        while (i < ind) {
            n = n.nxt;
            i = i + 1;
        }
        return n.item;
    }
    Object first() {
        return this.head.item;
    }
    int size() {
        return this.count;
    }
}
`
