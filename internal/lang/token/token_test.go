package token

import (
	"testing"
	"testing/quick"
)

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"class": CLASS, "extends": EXTENDS, "static": STATIC, "final": FINAL,
		"void": VOID, "int": INTK, "boolean": BOOLK, "string": STRK,
		"if": IF, "else": ELSE, "while": WHILE, "for": FOR, "return": RETURN,
		"new": NEW, "this": THIS, "super": SUPER, "null": NULL,
		"true": TRUE, "false": FALSE, "throw": THROW, "assert": ASSERT,
		"instanceof": INSTANCEOF, "break": BREAK, "continue": CONTINUE,
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
	for _, nonKw := range []string{"Class", "foo", "INT", "whileX", ""} {
		if got := Lookup(nonKw); got != IDENT {
			t.Errorf("Lookup(%q) = %v, want IDENT", nonKw, got)
		}
	}
}

func TestKeywordStringsRoundTrip(t *testing.T) {
	// Every keyword's String() must Lookup back to itself.
	for k := kwStart + 1; k < kwEnd; k++ {
		if got := Lookup(k.String()); got != k {
			t.Errorf("Lookup(%s.String()) = %v", k, got)
		}
		if !k.IsKeyword() {
			t.Errorf("%s should be a keyword", k)
		}
	}
	if IDENT.IsKeyword() || ADD.IsKeyword() {
		t.Error("non-keywords classified as keywords")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// ||  <  &&  <  ==  <  <  <  +  <  *
	chain := []Kind{LOR, LAND, EQL, LSS, ADD, MUL}
	for i := 1; i < len(chain); i++ {
		if chain[i-1].Precedence() >= chain[i].Precedence() {
			t.Errorf("%s should bind looser than %s", chain[i-1], chain[i])
		}
	}
	if ASSIGN.Precedence() != 0 || LPAREN.Precedence() != 0 {
		t.Error("non-binary tokens must have precedence 0")
	}
	if INSTANCEOF.Precedence() != LSS.Precedence() {
		t.Error("instanceof binds like a comparison")
	}
}

func TestPosString(t *testing.T) {
	p := Pos{File: "a.mj", Line: 3, Col: 7}
	if p.String() != "a.mj:3:7" {
		t.Errorf("got %q", p.String())
	}
	if (Pos{Line: 2, Col: 1}).String() != "2:1" {
		t.Error("file-less position formatting wrong")
	}
	if (Pos{}).IsValid() {
		t.Error("zero position must be invalid")
	}
	if !p.IsValid() {
		t.Error("real position must be valid")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "foo"}
	if tok.String() != `IDENT("foo")` {
		t.Errorf("got %q", tok.String())
	}
	if (Token{Kind: WHILE}).String() != "while" {
		t.Errorf("got %q", Token{Kind: WHILE}.String())
	}
}

// Property: Kind.String never panics or returns empty for the range of
// defined kinds plus some garbage values.
func TestKindStringTotal(t *testing.T) {
	f := func(raw int8) bool {
		k := Kind(raw)
		return k.String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
