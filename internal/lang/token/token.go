// Package token defines the lexical tokens of the MiniJava-style source
// language analyzed by the thin slicer, together with source positions.
//
// The language is a small Java subset: classes with single inheritance,
// virtual dispatch, object fields, arrays, strings, casts, instanceof,
// and structured control flow. It is rich enough to exhibit the
// heap-mediated value flow (containers, opcode-field class families) that
// the thin slicing paper (PLDI 2007) studies.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Literal kinds carry their text in Token.Lit.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	// Literals and identifiers.
	IDENT  // foo
	INT    // 123
	STRING // "abc"
	CHAR   // 'a'

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	LAND // &&
	LOR  // ||
	NOT  // !

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	ASSIGN // =

	LPAREN  // (
	RPAREN  // )
	LBRACE  // {
	RBRACE  // }
	LBRACK  // [
	RBRACK  // ]
	COMMA   // ,
	SEMI    // ;
	DOT     // .
	INCR    // ++ (statement-level only)
	DECR    // -- (statement-level only)
	PLUSEQ  // +=
	MINUSEQ // -=

	// Keywords.
	kwStart
	CLASS
	EXTENDS
	STATIC
	FINAL
	VOID
	INTK  // int
	BOOLK // boolean
	STRK  // string
	IF
	ELSE
	WHILE
	FOR
	RETURN
	NEW
	THIS
	SUPER
	NULL
	TRUE
	FALSE
	THROW
	ASSERT
	INSTANCEOF
	BREAK
	CONTINUE
	kwEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", COMMENT: "COMMENT",
	IDENT: "IDENT", INT: "INT", STRING: "STRING", CHAR: "CHAR",
	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	LAND: "&&", LOR: "||", NOT: "!",
	EQL: "==", NEQ: "!=", LSS: "<", LEQ: "<=", GTR: ">", GEQ: ">=",
	ASSIGN: "=",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", COMMA: ",", SEMI: ";", DOT: ".",
	INCR: "++", DECR: "--", PLUSEQ: "+=", MINUSEQ: "-=",
	CLASS: "class", EXTENDS: "extends", STATIC: "static", FINAL: "final",
	VOID: "void", INTK: "int", BOOLK: "boolean", STRK: "string",
	IF: "if", ELSE: "else", WHILE: "while", FOR: "for", RETURN: "return",
	NEW: "new", THIS: "this", SUPER: "super", NULL: "null",
	TRUE: "true", FALSE: "false", THROW: "throw", ASSERT: "assert",
	INSTANCEOF: "instanceof", BREAK: "break", CONTINUE: "continue",
}

// String returns a human-readable name or the operator/keyword spelling.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > kwStart && k < kwEnd }

// keywords maps spelling to keyword kind.
var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := kwStart + 1; k < kwEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup returns the keyword kind for an identifier spelling, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column plus the file name.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether p refers to a real source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexeme with its position and literal text.
type Token struct {
	Kind Kind
	Pos  Pos
	Lit  string // literal text for IDENT, INT, STRING, CHAR, COMMENT
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING, CHAR:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// Precedence returns the binary operator precedence (higher binds
// tighter), or 0 if k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQL, NEQ:
		return 3
	case LSS, LEQ, GTR, GEQ, INSTANCEOF:
		return 4
	case ADD, SUB:
		return 5
	case MUL, QUO, REM:
		return 6
	}
	return 0
}
