// Package printer renders ASTs back to source text. The output
// re-parses to a structurally identical tree (a property the tests
// check by fixpoint), which makes it useful for debugging generated
// programs and for golden output in tools.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"thinslice/internal/lang/ast"
	"thinslice/internal/lang/token"
)

// Program renders all classes of a program.
func Program(prog *ast.Program) string {
	var b strings.Builder
	for i, c := range prog.Classes {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(Class(c))
	}
	return b.String()
}

// Class renders one class declaration.
func Class(c *ast.ClassDecl) string {
	p := &printer{}
	p.class(c)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("    ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteString("\n")
}

func (p *printer) class(c *ast.ClassDecl) {
	head := "class " + c.Name
	if c.Super != "" {
		head += " extends " + c.Super
	}
	p.line("%s {", head)
	p.indent++
	for _, f := range c.Fields {
		mods := ""
		if f.Static {
			mods += "static "
		}
		if f.Final {
			mods += "final "
		}
		p.line("%s%s %s;", mods, ast.TypeString(f.Type), f.Name)
	}
	for _, m := range c.Methods {
		p.method(m)
	}
	p.indent--
	p.line("}")
}

func (p *printer) method(m *ast.MethodDecl) {
	var params []string
	for _, prm := range m.Params {
		params = append(params, ast.TypeString(prm.Type)+" "+prm.Name)
	}
	head := ""
	if m.Static {
		head += "static "
	}
	if m.IsCtor {
		head += m.Name
	} else {
		head += ast.TypeString(m.Ret) + " " + m.Name
	}
	p.line("%s(%s) {", head, strings.Join(params, ", "))
	p.indent++
	for _, s := range m.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) blockBody(s ast.Stmt) {
	p.indent++
	if blk, ok := s.(*ast.Block); ok {
		for _, st := range blk.Stmts {
			p.stmt(st)
		}
	} else if s != nil {
		p.stmt(s)
	}
	p.indent--
}

func (p *printer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		p.line("{")
		p.blockBody(s)
		p.line("}")
	case *ast.VarDecl:
		if s.Init != nil {
			p.line("%s %s = %s;", ast.TypeString(s.Type), s.Name, Expr(s.Init))
		} else {
			p.line("%s %s;", ast.TypeString(s.Type), s.Name)
		}
	case *ast.Assign:
		p.line("%s = %s;", Expr(s.LHS), Expr(s.RHS))
	case *ast.If:
		p.line("if (%s) {", Expr(s.Cond))
		p.blockBody(s.Then)
		if s.Else != nil {
			p.line("} else {")
			p.blockBody(s.Else)
		}
		p.line("}")
	case *ast.While:
		p.line("while (%s) {", Expr(s.Cond))
		p.blockBody(s.Body)
		p.line("}")
	case *ast.For:
		init, cond, post := "", "", ""
		if s.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(p.capture(s.Init)), ";")
		}
		if s.Cond != nil {
			cond = Expr(s.Cond)
		}
		if s.Post != nil {
			post = strings.TrimSuffix(strings.TrimSpace(p.capture(s.Post)), ";")
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.blockBody(s.Body)
		p.line("}")
	case *ast.Return:
		if s.Value != nil {
			p.line("return %s;", Expr(s.Value))
		} else {
			p.line("return;")
		}
	case *ast.ExprStmt:
		p.line("%s;", Expr(s.X))
	case *ast.Throw:
		p.line("throw %s;", Expr(s.X))
	case *ast.Assert:
		p.line("assert(%s);", Expr(s.Cond))
	case *ast.Break:
		p.line("break;")
	case *ast.Continue:
		p.line("continue;")
	default:
		p.line("/* unknown statement %T */;", s)
	}
}

// capture renders a single statement to a string (used for for-clauses).
func (p *printer) capture(s ast.Stmt) string {
	sub := &printer{}
	sub.stmt(s)
	return sub.b.String()
}

// Expr renders an expression with minimal necessary parentheses.
func Expr(e ast.Expr) string { return exprPrec(e, 0) }

// exprPrec renders e assuming it appears in a context of the given
// binding strength; parentheses are added when e binds looser.
func exprPrec(e ast.Expr, ctx int) string {
	switch e := e.(type) {
	case *ast.IntLit:
		return strconv.FormatInt(e.Value, 10)
	case *ast.BoolLit:
		return strconv.FormatBool(e.Value)
	case *ast.StrLit:
		return strconv.Quote(e.Value)
	case *ast.NullLit:
		return "null"
	case *ast.Ident:
		return e.Name
	case *ast.This:
		return "this"
	case *ast.Binary:
		prec := e.Op.Precedence()
		s := exprPrec(e.X, prec) + " " + e.Op.String() + " " + exprPrec(e.Y, prec+1)
		if prec < ctx {
			return "(" + s + ")"
		}
		return s
	case *ast.Unary:
		operand := exprPrec(e.X, 7)
		if e.Op == token.SUB {
			// Avoid "--x" gluing into a decrement token.
			if strings.HasPrefix(operand, "-") {
				operand = "(" + operand + ")"
			}
			return "-" + operand
		}
		return "!" + operand
	case *ast.FieldAccess:
		return exprPrec(e.X, 8) + "." + e.Name
	case *ast.Index:
		return exprPrec(e.X, 8) + "[" + Expr(e.I) + "]"
	case *ast.Call:
		var args []string
		for _, a := range e.Args {
			args = append(args, Expr(a))
		}
		if e.IsSuper {
			return "super(" + strings.Join(args, ", ") + ")"
		}
		if e.Recv == nil {
			return e.Name + "(" + strings.Join(args, ", ") + ")"
		}
		return exprPrec(e.Recv, 8) + "." + e.Name + "(" + strings.Join(args, ", ") + ")"
	case *ast.New:
		var args []string
		for _, a := range e.Args {
			args = append(args, Expr(a))
		}
		return "new " + e.Class + "(" + strings.Join(args, ", ") + ")"
	case *ast.NewArray:
		return "new " + ast.TypeString(e.Elem) + "[" + Expr(e.Len) + "]"
	case *ast.Cast:
		s := "(" + ast.TypeString(e.Type) + ") " + exprPrec(e.X, 7)
		if ctx > 0 {
			return "(" + s + ")"
		}
		return s
	case *ast.InstanceOf:
		prec := token.INSTANCEOF.Precedence()
		s := exprPrec(e.X, prec) + " instanceof " + e.Class
		if prec < ctx {
			return "(" + s + ")"
		}
		return s
	}
	return fmt.Sprintf("/*?%T*/", e)
}
