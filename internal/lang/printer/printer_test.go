package printer_test

import (
	"strings"
	"testing"
	"testing/quick"

	"thinslice/internal/lang/parser"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/lang/printer"
	"thinslice/internal/papercases"
	"thinslice/internal/randprog"
)

// reprint parses src and renders it back.
func reprint(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.ParseProgram(map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return printer.Program(prog)
}

// TestRoundTripFixpoint: print∘parse is a fixpoint — printing, parsing
// and printing again yields the identical text. This implies the
// printed form re-parses to a structurally identical tree.
func TestRoundTripFixpoint(t *testing.T) {
	sources := map[string]string{
		"prelude":    prelude.Source,
		"firstnames": papercases.FirstNames,
		"toy":        papercases.Toy,
		"filebug":    papercases.FileBug,
		"toughcast":  papercases.ToughCast,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			once := reprint(t, src)
			twice := reprint(t, once)
			if once != twice {
				t.Fatalf("not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", once, twice)
			}
		})
	}
}

// TestPropertyRoundTripOnRandomPrograms runs the fixpoint property over
// the random program generator.
func TestPropertyRoundTripOnRandomPrograms(t *testing.T) {
	f := func(seed int64) bool {
		src := randprog.Generate(seed, randprog.DefaultConfig)["rand.mj"]
		prog, err := parser.ParseProgram(map[string]string{"rand.mj": src})
		if err != nil {
			return false
		}
		once := printer.Program(prog)
		prog2, err := parser.ParseProgram(map[string]string{"rand.mj": once})
		if err != nil {
			t.Logf("seed %d: reprint does not parse: %v\n%s", seed, err, once)
			return false
		}
		twice := printer.Program(prog2)
		if once != twice {
			t.Logf("seed %d: not a fixpoint", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecedenceParenthesization(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x = a + b * c;", "x = a + b * c;"},
		{"x = (a + b) * c;", "x = (a + b) * c;"},
		{"b = x < y && p || q;", "b = x < y && p || q;"},
		{"b = x < (y + 1);", "b = x < y + 1;"}, // redundant parens dropped
		{"b = !(p && q);", "b = !(p && q);"},
		{"x = a - (b - c);", "x = a - (b - c);"}, // left-assoc preserved
		{"x = -(-y);", "x = -(-y);"},             // not a decrement
	}
	for _, c := range cases {
		src := "class A { void m(int a, int b, int c, int x, int y, boolean p, boolean q) { " + c.src + " } }"
		out := reprint(t, src)
		if !strings.Contains(out, c.want) {
			t.Errorf("%q printed without %q:\n%s", c.src, c.want, out)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	src := `class A { void m() { print("line\nbreak \"quoted\""); } }`
	once := reprint(t, src)
	twice := reprint(t, once)
	if once != twice {
		t.Fatalf("escape round trip broken:\n%s\nvs\n%s", once, twice)
	}
	if !strings.Contains(once, `\n`) {
		t.Error("newline escape lost")
	}
}

func TestForLoopClauses(t *testing.T) {
	src := `class A { void m(int n) { for (int i = 0; i < n; i++) { print(i); } for (;;) { break; } } }`
	out := reprint(t, src)
	if !strings.Contains(out, "for (int i = 0; i < n; i = i + 1)") {
		t.Errorf("for clauses wrong (note ++ desugars in the AST):\n%s", out)
	}
	if !strings.Contains(out, "for (; ; )") {
		t.Errorf("empty clauses wrong:\n%s", out)
	}
}

func TestSuperAndCtor(t *testing.T) {
	src := `class Node { int op; Node(int op) { this.op = op; } }
class AddNode extends Node { AddNode() { super(1); } }`
	out := reprint(t, src)
	for _, want := range []string{"class AddNode extends Node {", "AddNode() {", "super(1);", "this.op = op;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
