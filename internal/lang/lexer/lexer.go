// Package lexer tokenizes MiniJava-style source text.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"thinslice/internal/lang/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans a source buffer into tokens. Comments are skipped.
type Lexer struct {
	file   string
	src    string
	off    int // byte offset of current rune
	line   int
	col    int
	errors []*Error
}

// New returns a lexer over src, reporting positions in file.
func New(file, src string) *Lexer {
	// Normalize line endings so positions are stable across platforms.
	src = strings.ReplaceAll(src, "\r\n", "\n")
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Errors returns lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errors }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errors = append(l.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

// peek returns the current rune without consuming it, or -1 at EOF.
// Source text is overwhelmingly ASCII, so the single-byte case skips
// UTF-8 decoding entirely (it shows up in whole-pipeline profiles).
func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	if c := l.src[l.off]; c < utf8.RuneSelf {
		return rune(c)
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

// peek2 returns the rune after the current one, or -1.
func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return -1
	}
	w := 1
	if l.src[l.off] >= utf8.RuneSelf {
		_, w = utf8.DecodeRuneInString(l.src[l.off:])
	}
	if l.off+w >= len(l.src) {
		return -1
	}
	if c := l.src[l.off+w]; c < utf8.RuneSelf {
		return rune(c)
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+w:])
	return r
}

func (l *Lexer) next() rune {
	if l.off >= len(l.src) {
		return -1
	}
	var r rune
	if c := l.src[l.off]; c < utf8.RuneSelf {
		r = rune(c)
		l.off++
	} else {
		var w int
		r, w = utf8.DecodeRuneInString(l.src[l.off:])
		l.off += w
	}
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func isLetter(r rune) bool {
	return r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') ||
		(r >= utf8.RuneSelf && unicode.IsLetter(r))
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			l.next()
		case r == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != -1 {
				l.next()
			}
		case r == '/' && l.peek2() == '*':
			start := l.pos()
			l.next()
			l.next()
			closed := false
			for l.peek() != -1 {
				if l.peek() == '*' && l.peek2() == '/' {
					l.next()
					l.next()
					closed = true
					break
				}
				l.next()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token. At end of input it returns EOF
// tokens forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	r := l.peek()
	switch {
	case r == -1:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isLetter(r):
		start := l.off
		for isLetter(l.peek()) || isDigit(l.peek()) {
			l.next()
		}
		lit := l.src[start:l.off]
		return token.Token{Kind: token.Lookup(lit), Pos: pos, Lit: lit}
	case isDigit(r):
		start := l.off
		for isDigit(l.peek()) {
			l.next()
		}
		if isLetter(l.peek()) {
			l.errorf(pos, "identifier cannot start with a digit")
		}
		return token.Token{Kind: token.INT, Pos: pos, Lit: l.src[start:l.off]}
	case r == '"':
		return l.scanString(pos)
	case r == '\'':
		return l.scanChar(pos)
	}
	l.next()
	two := func(second rune, twoKind, oneKind token.Kind) token.Token {
		if l.peek() == second {
			l.next()
			return token.Token{Kind: twoKind, Pos: pos}
		}
		return token.Token{Kind: oneKind, Pos: pos}
	}
	switch r {
	case '+':
		if l.peek() == '+' {
			l.next()
			return token.Token{Kind: token.INCR, Pos: pos}
		}
		return two('=', token.PLUSEQ, token.ADD)
	case '-':
		if l.peek() == '-' {
			l.next()
			return token.Token{Kind: token.DECR, Pos: pos}
		}
		return two('=', token.MINUSEQ, token.SUB)
	case '*':
		return token.Token{Kind: token.MUL, Pos: pos}
	case '/':
		return token.Token{Kind: token.QUO, Pos: pos}
	case '%':
		return token.Token{Kind: token.REM, Pos: pos}
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LEQ, token.LSS)
	case '>':
		return two('=', token.GEQ, token.GTR)
	case '&':
		if l.peek() == '&' {
			l.next()
			return token.Token{Kind: token.LAND, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean &&?)", r)
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(r)}
	case '|':
		if l.peek() == '|' {
			l.next()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean ||?)", r)
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(r)}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", r)
	return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(r)}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.next() // opening quote
	var b strings.Builder
	for {
		r := l.peek()
		switch r {
		case -1, '\n':
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.STRING, Pos: pos, Lit: b.String()}
		case '"':
			l.next()
			return token.Token{Kind: token.STRING, Pos: pos, Lit: b.String()}
		case '\\':
			l.next()
			b.WriteRune(l.unescape(pos))
		default:
			l.next()
			b.WriteRune(r)
		}
	}
}

func (l *Lexer) scanChar(pos token.Pos) token.Token {
	l.next() // opening quote
	var val rune
	switch r := l.peek(); r {
	case -1, '\n':
		l.errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.CHAR, Pos: pos, Lit: ""}
	case '\\':
		l.next()
		val = l.unescape(pos)
	default:
		l.next()
		val = r
	}
	if l.peek() != '\'' {
		l.errorf(pos, "unterminated character literal")
	} else {
		l.next()
	}
	return token.Token{Kind: token.CHAR, Pos: pos, Lit: string(val)}
}

func (l *Lexer) unescape(pos token.Pos) rune {
	r := l.next()
	switch r {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '\\':
		return '\\'
	case '"':
		return '"'
	case '\'':
		return '\''
	case '0':
		return 0
	}
	l.errorf(pos, "invalid escape sequence \\%c", r)
	return r
}

// ScanAll tokenizes the entire input, excluding the trailing EOF token.
func ScanAll(file, src string) ([]token.Token, []*Error) {
	l := New(file, src)
	// Dense machine-written source runs about 3.6 bytes per token, so
	// /3 gives every realistic input a single allocation that holds the
	// whole stream (growth copies of a token slice are expensive: every
	// Token carries string headers the GC must scan).
	toks := make([]token.Token, 0, len(src)/3+16)
	for {
		t := l.Next()
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
		toks = append(toks, t)
	}
}
