package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"thinslice/internal/lang/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	src := `class Foo extends Bar { int x; }`
	toks, errs := ScanAll("t.mj", src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{
		token.CLASS, token.IDENT, token.EXTENDS, token.IDENT,
		token.LBRACE, token.INTK, token.IDENT, token.SEMI, token.RBRACE,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	src := `+ - * / % && || ! == != < <= > >= = ++ -- += -=`
	toks, errs := ScanAll("t.mj", src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LAND, token.LOR, token.NOT,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.ASSIGN, token.INCR, token.DECR, token.PLUSEQ, token.MINUSEQ,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestStringLiteral(t *testing.T) {
	toks, errs := ScanAll("t.mj", `"hello \"world\"\n"`)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(toks) != 1 || toks[0].Kind != token.STRING {
		t.Fatalf("got %v", toks)
	}
	if toks[0].Lit != "hello \"world\"\n" {
		t.Errorf("got %q", toks[0].Lit)
	}
}

func TestCharLiteral(t *testing.T) {
	toks, errs := ScanAll("t.mj", `'a' '\n' ' '`)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(toks) != 3 {
		t.Fatalf("got %d tokens", len(toks))
	}
	wantLits := []string{"a", "\n", " "}
	for i, w := range wantLits {
		if toks[i].Kind != token.CHAR || toks[i].Lit != w {
			t.Errorf("token %d: got %v lit=%q, want CHAR %q", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
}

func TestComments(t *testing.T) {
	src := "x // line comment\n/* block\ncomment */ y"
	toks, errs := ScanAll("t.mj", src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(toks) != 2 || toks[0].Lit != "x" || toks[1].Lit != "y" {
		t.Fatalf("got %v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Errorf("y at line %d, want 3", toks[1].Pos.Line)
	}
}

func TestPositions(t *testing.T) {
	src := "a\n  bb\n    ccc"
	toks, _ := ScanAll("f.mj", src)
	wantPos := []struct{ line, col int }{{1, 1}, {2, 3}, {3, 5}}
	for i, w := range wantPos {
		if toks[i].Pos.Line != w.line || toks[i].Pos.Col != w.col {
			t.Errorf("token %d at %d:%d, want %d:%d", i, toks[i].Pos.Line, toks[i].Pos.Col, w.line, w.col)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	_, errs := ScanAll("t.mj", `"abc`)
	if len(errs) == 0 {
		t.Fatal("expected an error for unterminated string")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := ScanAll("t.mj", `/* abc`)
	if len(errs) == 0 {
		t.Fatal("expected an error for unterminated comment")
	}
}

func TestIllegalCharacter(t *testing.T) {
	toks, errs := ScanAll("t.mj", `x # y`)
	if len(errs) == 0 {
		t.Fatal("expected an error for illegal character")
	}
	if len(toks) != 3 || toks[1].Kind != token.ILLEGAL {
		t.Fatalf("got %v", toks)
	}
}

func TestSingleAmpersandAndPipe(t *testing.T) {
	_, errs := ScanAll("t.mj", `a & b | c`)
	if len(errs) != 2 {
		t.Fatalf("want 2 errors, got %v", errs)
	}
}

func TestKeywordsNotIdents(t *testing.T) {
	for _, kw := range []string{"class", "while", "instanceof", "null", "this", "new", "assert"} {
		toks, _ := ScanAll("t.mj", kw)
		if len(toks) != 1 || toks[0].Kind == token.IDENT {
			t.Errorf("%q lexed as %v, want keyword", kw, toks)
		}
	}
	// Prefix of a keyword is an identifier.
	toks, _ := ScanAll("t.mj", "classy whiled nullx")
	for _, tok := range toks {
		if tok.Kind != token.IDENT {
			t.Errorf("%q lexed as %v, want IDENT", tok.Lit, tok.Kind)
		}
	}
}

func TestDigitPrefixedIdentRejected(t *testing.T) {
	_, errs := ScanAll("t.mj", "123abc")
	if len(errs) == 0 {
		t.Fatal("expected error for digit-prefixed identifier")
	}
}

// Property: lexing never panics and always terminates on arbitrary input.
func TestLexerTotalOnArbitraryInput(t *testing.T) {
	f := func(s string) bool {
		toks, _ := ScanAll("t.mj", s)
		for _, tok := range toks {
			if tok.Kind == token.EOF {
				return false // EOF must not appear in ScanAll output
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for identifier-and-space-only inputs, the concatenation of
// literals equals the input with spaces removed.
func TestLexerPreservesIdentText(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			var b strings.Builder
			for _, r := range w {
				if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
					b.WriteRune(r)
				}
			}
			if b.Len() > 0 && token.Lookup(b.String()) == token.IDENT {
				clean = append(clean, b.String())
			}
		}
		src := strings.Join(clean, " ")
		toks, errs := ScanAll("t.mj", src)
		if len(errs) != 0 || len(toks) != len(clean) {
			return false
		}
		for i, tok := range toks {
			if tok.Lit != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("t.mj", "x")
	l.Next()
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d: got %v, want EOF", i, tok)
		}
	}
}
