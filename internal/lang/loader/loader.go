// Package loader ties the frontend together: it parses user sources
// together with the container prelude and runs semantic analysis,
// producing the typed program every analysis consumes.
package loader

import (
	"thinslice/internal/lang/parser"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/lang/types"
)

// Load parses and checks the given sources (file name -> content) plus
// the standard container prelude.
func Load(sources map[string]string) (*types.Info, error) {
	all := make(map[string]string, len(sources)+1)
	for name, src := range sources {
		all[name] = src
	}
	all[prelude.FileName] = prelude.Source
	return LoadBare(all)
}

// LoadBare parses and checks the given sources without adding the
// prelude. Useful for self-contained unit-test programs.
func LoadBare(sources map[string]string) (*types.Info, error) {
	prog, err := parser.ParseProgram(sources)
	if err != nil {
		return nil, err
	}
	return types.Check(prog)
}

