package loader_test

import (
	"strings"
	"testing"

	"thinslice/internal/lang/loader"
)

func TestLoadIncludesPrelude(t *testing.T) {
	info, err := loader.Load(map[string]string{"m.mj": `
		class Main { static void main() { Vector v = new Vector(); v.add("x"); } }
	`})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Vector", "HashMap", "LinkedList", "Iterator", "Object", "String"} {
		if info.Classes[name] == nil {
			t.Errorf("class %s missing", name)
		}
	}
}

func TestLoadBareExcludesPrelude(t *testing.T) {
	info, err := loader.LoadBare(map[string]string{"m.mj": `class Main { static void main() { print(1); } }`})
	if err != nil {
		t.Fatal(err)
	}
	if info.Classes["Vector"] != nil {
		t.Error("LoadBare must not include the prelude")
	}
	if info.Classes["Object"] == nil || info.Classes["String"] == nil {
		t.Error("predeclared classes must exist even without the prelude")
	}
}

func TestLoadParseErrorPropagates(t *testing.T) {
	_, err := loader.Load(map[string]string{"m.mj": `class {`})
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLoadSemanticErrorPropagates(t *testing.T) {
	_, err := loader.Load(map[string]string{"m.mj": `class A { int m() { return nope; } }`})
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("expected semantic error, got %v", err)
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLoad should panic on bad input")
		}
	}()
	loader.MustLoad(map[string]string{"m.mj": "class {"})
}

func TestMustLoadOK(t *testing.T) {
	info := loader.MustLoad(map[string]string{"m.mj": `class Main { static void main() { print(1); } }`})
	if info == nil {
		t.Fatal("nil info")
	}
}

func TestUserClassMayNotShadowPrelude(t *testing.T) {
	_, err := loader.Load(map[string]string{"m.mj": `class Vector { }`})
	if err == nil || !strings.Contains(err.Error(), "duplicate class") {
		t.Fatalf("expected duplicate-class error, got %v", err)
	}
}
