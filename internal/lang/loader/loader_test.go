package loader_test

import (
	"strings"
	"testing"

	"thinslice/internal/lang/loader"
)

func TestLoadIncludesPrelude(t *testing.T) {
	info, err := loader.Load(map[string]string{"m.mj": `
		class Main { static void main() { Vector v = new Vector(); v.add("x"); } }
	`})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Vector", "HashMap", "LinkedList", "Iterator", "Object", "String"} {
		if info.Classes[name] == nil {
			t.Errorf("class %s missing", name)
		}
	}
}

func TestLoadBareExcludesPrelude(t *testing.T) {
	info, err := loader.LoadBare(map[string]string{"m.mj": `class Main { static void main() { print(1); } }`})
	if err != nil {
		t.Fatal(err)
	}
	if info.Classes["Vector"] != nil {
		t.Error("LoadBare must not include the prelude")
	}
	if info.Classes["Object"] == nil || info.Classes["String"] == nil {
		t.Error("predeclared classes must exist even without the prelude")
	}
}

func TestLoadParseErrorPropagates(t *testing.T) {
	_, err := loader.Load(map[string]string{"m.mj": `class {`})
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLoadSemanticErrorPropagates(t *testing.T) {
	_, err := loader.Load(map[string]string{"m.mj": `class A { int m() { return nope; } }`})
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("expected semantic error, got %v", err)
	}
}

func TestLoadNeverPanicsOnBadInput(t *testing.T) {
	// The loader reports failures as errors, never panics.
	for _, src := range []string{"class {", "class A { int m() { return", "\x00\x01"} {
		_, err := loader.Load(map[string]string{"m.mj": src})
		if err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestLoadOK(t *testing.T) {
	info, err := loader.Load(map[string]string{"m.mj": `class Main { static void main() { print(1); } }`})
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("nil info")
	}
}

func TestUserClassMayNotShadowPrelude(t *testing.T) {
	_, err := loader.Load(map[string]string{"m.mj": `class Vector { }`})
	if err == nil || !strings.Contains(err.Error(), "duplicate class") {
		t.Fatalf("expected duplicate-class error, got %v", err)
	}
}
