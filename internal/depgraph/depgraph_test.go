package depgraph_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"thinslice/internal/depgraph"
	"thinslice/internal/lang/loader"
	"thinslice/internal/lang/types"
)

const progA = `
class Util {
  int twice(int x) { return x + x; }
  int thrice(int x) { return x + this.twice(x); }
}
class Main {
  static void main() {
    Util u = new Util();
    int r = u.thrice(3);
  }
}
`

func check(t *testing.T, srcs map[string]string) *types.Info {
	t.Helper()
	info, err := loader.LoadBare(srcs)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return info
}

func build(t *testing.T, srcs map[string]string) *depgraph.Graph {
	t.Helper()
	return depgraph.Build(check(t, srcs))
}

func unitKeys(g *depgraph.Graph) map[string]string {
	m := make(map[string]string, len(g.Units))
	for _, u := range g.Units {
		m[u.QName] = u.Key
	}
	return m
}

func TestBuildDeterministic(t *testing.T) {
	srcs := map[string]string{"a.tj": progA}
	g1, g2 := build(t, srcs), build(t, srcs)
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatalf("fingerprints differ across identical builds")
	}
	b1, err := depgraph.EncodeGraph(g1)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b2, _ := depgraph.EncodeGraph(g2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("encoded bytes differ across identical builds")
	}
}

func TestUnitsAndRefs(t *testing.T) {
	g := build(t, map[string]string{"a.tj": progA})
	want := []string{"Util.<init>", "Util.twice", "Util.thrice", "Main.main"}
	var got []string
	for _, u := range g.Units {
		got = append(got, u.QName)
	}
	for _, q := range want {
		found := false
		for _, h := range got {
			if h == q {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing unit %q in %v", q, got)
		}
	}
	thrice, ok := g.Unit("Util.thrice")
	if !ok {
		t.Fatal("no Util.thrice unit")
	}
	if !reflect.DeepEqual(thrice.Refs, []string{"Util.twice"}) {
		t.Fatalf("Util.thrice refs = %v, want [Util.twice]", thrice.Refs)
	}
	main, _ := g.Unit("Main.main")
	wantRefs := []string{"Util.<init>", "Util.thrice"}
	if !reflect.DeepEqual(main.Refs, wantRefs) {
		t.Fatalf("Main.main refs = %v, want %v", main.Refs, wantRefs)
	}
	ctor, ok := g.Unit("Util.<init>")
	if !ok || !ctor.Synthesized {
		t.Fatalf("Util.<init> should be a synthesized unit, got %+v ok=%v", ctor, ok)
	}
}

func TestDiffBodyEditIsLocal(t *testing.T) {
	old := build(t, map[string]string{"a.tj": progA})
	// Change only twice's body, preserving all positions outside it.
	edited := strings.Replace(progA, "return x + x;", "return x * 2;", 1)
	if edited == progA {
		t.Fatal("edit did not apply")
	}
	new := build(t, map[string]string{"a.tj": edited})
	d := depgraph.Diff(old, new)
	if !reflect.DeepEqual(d.Changed, []string{"Util.twice"}) || len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("body edit delta = %+v, want exactly Changed=[Util.twice]", d)
	}
}

func TestDiffSignatureEditInvalidatesReferencers(t *testing.T) {
	old := build(t, map[string]string{"a.tj": progA})
	// Rename twice → twicex (same length, positions preserved) and fix
	// its one call site (also same length).
	edited := strings.Replace(progA, "int twice(", "int twicex(", 1)
	edited = strings.Replace(edited, "this.twice(x)", "this.twicex(x)", 1)
	// Keep source length drift from shifting later lines: the two edits
	// are on separate lines, so only those lines' columns shift.
	new := build(t, map[string]string{"a.tj": edited})
	d := depgraph.Diff(old, new)
	if !reflect.DeepEqual(d.Added, []string{"Util.twicex"}) || !reflect.DeepEqual(d.Removed, []string{"Util.twice"}) {
		t.Fatalf("rename delta = %+v, want Added=[Util.twicex] Removed=[Util.twice]", d)
	}
	// Every unit whose key depends on class Util must change: the deep
	// class fingerprint shifted. Util.thrice calls it; Main.main
	// references Util.
	changed := map[string]bool{}
	for _, q := range d.Changed {
		changed[q] = true
	}
	for _, q := range []string{"Util.thrice", "Main.main", "Util.<init>"} {
		if !changed[q] {
			t.Errorf("signature change should invalidate %s; delta %+v", q, d)
		}
	}
}

func TestDiffAcrossFiles(t *testing.T) {
	multi := map[string]string{
		"util.tj": "class Util {\n  int twice(int x) { return x + x; }\n}\n",
		"main.tj": "class Main {\n  static void main() {\n    Util u = new Util();\n    int r = u.twice(2);\n  }\n}\n",
		"far.tj":  "class Far {\n  int solo(int y) { return y - 1; }\n}\n",
	}
	old := build(t, multi)
	edited := map[string]string{}
	for k, v := range multi {
		edited[k] = v
	}
	edited["util.tj"] = strings.Replace(multi["util.tj"], "x + x", "x * 2", 1)
	new := build(t, edited)
	d := depgraph.Diff(old, new)
	if !reflect.DeepEqual(d.Changed, []string{"Util.twice"}) {
		t.Fatalf("cross-file body edit delta = %+v, want Changed=[Util.twice] only", d)
	}
	if _, ok := new.Unit("Far.solo"); !ok {
		t.Fatal("Far.solo missing")
	}
	if unitKeys(old)["Far.solo"] != unitKeys(new)["Far.solo"] {
		t.Fatal("unrelated file's unit key changed")
	}
}

func TestTopoBatchesCalleesFirst(t *testing.T) {
	g := build(t, map[string]string{"a.tj": progA})
	dirty := map[string]bool{"Util.twice": true, "Util.thrice": true, "Main.main": true}
	batches := g.TopoBatches(dirty)
	order := map[string]int{}
	for i, b := range batches {
		for _, q := range b {
			order[q] = i
		}
	}
	if len(order) != len(dirty) {
		t.Fatalf("batches %v cover %d units, want %d", batches, len(order), len(dirty))
	}
	if !(order["Util.twice"] < order["Util.thrice"] && order["Util.thrice"] < order["Main.main"]) {
		t.Fatalf("batches %v violate callee-before-caller order", batches)
	}
}

func TestTopoBatchesBreaksCycles(t *testing.T) {
	rec := `
class R {
  int even(int n) { if (n == 0) { return 1; } return this.odd(n - 1); }
  int odd(int n) { if (n == 0) { return 0; } return this.even(n - 1); }
}
class Main { static void main() { R r = new R(); int x = r.even(4); } }
`
	g := build(t, map[string]string{"r.tj": rec})
	dirty := map[string]bool{"R.even": true, "R.odd": true}
	batches := g.TopoBatches(dirty)
	seen := map[string]bool{}
	for _, b := range batches {
		for _, q := range b {
			if seen[q] {
				t.Fatalf("unit %s scheduled twice in %v", q, batches)
			}
			seen[q] = true
		}
	}
	if !seen["R.even"] || !seen["R.odd"] {
		t.Fatalf("cycle members not all scheduled: %v", batches)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := build(t, map[string]string{"a.tj": progA})
	data, err := depgraph.EncodeGraph(g)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := depgraph.DecodeGraph(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Fingerprint() != g.Fingerprint() {
		t.Fatal("round-trip fingerprint mismatch")
	}
	data2, _ := depgraph.EncodeGraph(back)
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encode not byte-identical")
	}
	// Corrupt every truncation length; decode must fail cleanly, never
	// panic.
	for n := 0; n < len(data); n++ {
		if _, err := depgraph.DecodeGraph(data[:n]); err == nil && n < len(data) {
			t.Fatalf("decode of %d-byte truncation succeeded", n)
		}
	}
}
