// Package depgraph builds a cross-file symbol dependency graph over a
// checked program: one Unit per lowering job (a declared method or a
// synthesized default constructor), each keyed by a content hash that
// captures everything its lowering can observe — the unit's own AST
// (positions included, because lowered instructions carry positions),
// the deep structural fingerprint of its owner class, and the deep
// fingerprints of every class its body references. Deep class
// fingerprints fold in the superclass chain and every member signature,
// so a signature edit anywhere invalidates exactly the units whose
// lowering could see it: comparing unit keys between two checked
// revisions (Diff) yields the transitively affected frontier directly,
// with no separate closure pass.
//
// The session's derivation graph (PR 9) uses the graph three ways: unit
// keys address per-method IR artifacts in the shared store, Diff
// computes the changed-symbol frontier after an edit, and TopoBatches
// schedules re-lowering of the frontier in Kahn-style caller-after-
// callee batches over the existing worker pools.
package depgraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"

	"thinslice/internal/artifact"
	"thinslice/internal/lang/ast"
	"thinslice/internal/lang/token"
	"thinslice/internal/lang/types"
)

// Unit is one lowering unit: a declared method/constructor or a
// synthesized default constructor.
type Unit struct {
	// QName is the method's qualified name (types.MethodInfo.QualifiedName).
	QName string
	// File is the source file of the unit's declaration (the owner
	// class's declaration file for synthesized constructors).
	File string
	// Key is the unit's content hash: equal keys mean the unit lowers to
	// byte-identical IR against any checked program containing it.
	Key string
	// Synthesized marks a compiler-generated default constructor (no
	// declaration of its own).
	Synthesized bool
	// Refs names the units this unit's body calls (deduplicated, sorted
	// qualified names, declared units only). TopoBatches schedules over
	// these edges.
	Refs []string
}

// Graph is the symbol dependency graph of one checked program: units in
// lowering job order plus the per-class deep fingerprints they are
// keyed by.
type Graph struct {
	Units []Unit
	index map[string]int // QName → Units index
}

// Unit returns the unit named q and whether it exists.
func (g *Graph) Unit(q string) (Unit, bool) {
	i, ok := g.index[q]
	if !ok {
		return Unit{}, false
	}
	return g.Units[i], true
}

// hasher accumulates length-prefixed fields so no two distinct field
// sequences collide by concatenation.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (h *hasher) str(s string) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(len(s)))
	h.h.Write(h.buf[:])
	h.h.Write([]byte(s))
}

func (h *hasher) num(v int64) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
	h.h.Write(h.buf[:])
}

func (h *hasher) pos(p token.Pos) {
	h.str(p.File)
	h.num(int64(p.Line))
	h.num(int64(p.Col))
}

func (h *hasher) sum() string { return hex.EncodeToString(h.h.Sum(nil)) }

// Build constructs the dependency graph for a checked program.
func Build(info *types.Info) *Graph {
	b := &builder{info: info, classFPs: make(map[*types.ClassInfo]string)}
	g := &Graph{index: make(map[string]int)}
	// Same job collection as ir.LowerWorkers: declaration order, with
	// the synthesized default constructor after a class's declared
	// methods.
	for _, decl := range info.Prog.Classes {
		ci := info.Classes[decl.Name]
		if ci == nil || ci.Decl != decl {
			continue
		}
		for _, mdecl := range decl.Methods {
			if mi := info.MethodOfDecl[mdecl]; mi != nil {
				g.Units = append(g.Units, b.unit(mi))
			}
		}
		if ci.Ctor != nil && ci.Ctor.Decl == nil {
			g.Units = append(g.Units, b.unit(ci.Ctor))
		}
	}
	for i, u := range g.Units {
		g.index[u.QName] = i
	}
	return g
}

type builder struct {
	info     *types.Info
	classFPs map[*types.ClassInfo]string
}

// classFP is the deep structural fingerprint of a class: its name, the
// full fingerprint of its superclass, and every member signature
// (fields with type/static/final, methods and constructor with
// parameter and return types). Bodies are not included — a body edit
// must invalidate only its own unit.
func (b *builder) classFP(ci *types.ClassInfo) string {
	if fp, ok := b.classFPs[ci]; ok {
		return fp
	}
	b.classFPs[ci] = "" // cycle guard; class hierarchies are acyclic post-check
	h := newHasher()
	h.str("class")
	h.str(ci.Name)
	if ci.Super != nil {
		h.str(b.classFP(ci.Super))
	} else {
		h.str("")
	}
	h.num(int64(len(ci.Fields)))
	for _, f := range ci.Fields {
		h.str(f.Name)
		h.str(typeStr(f.Type))
		h.num(boolBit(f.Static)<<1 | boolBit(f.Final))
	}
	h.num(int64(len(ci.Methods)))
	for _, m := range ci.Methods {
		b.sigFP(h, m)
	}
	if ci.Ctor != nil {
		h.str("ctor")
		b.sigFP(h, ci.Ctor)
		h.num(boolBit(ci.Ctor.Decl == nil)) // synthesized vs declared
	} else {
		h.str("")
	}
	fp := h.sum()
	b.classFPs[ci] = fp
	return fp
}

// sigFP folds one method signature into h (no body, no owner — the
// owner's identity comes from the enclosing classFP computation).
func (b *builder) sigFP(h *hasher, m *types.MethodInfo) {
	h.str(m.Name)
	h.num(boolBit(m.Static)<<1 | boolBit(m.IsCtor))
	h.num(int64(len(m.Params)))
	for _, p := range m.Params {
		h.str(typeStr(p))
	}
	h.str(typeStr(m.Ret))
}

func typeStr(t types.Type) string {
	if t == nil {
		return ""
	}
	return t.String()
}

func boolBit(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// unit builds the Unit record for one lowering job.
func (b *builder) unit(mi *types.MethodInfo) Unit {
	u := Unit{
		QName:       mi.QualifiedName(),
		Synthesized: mi.Decl == nil,
	}
	h := newHasher()
	h.str("unit")
	h.str(u.QName)
	h.str(b.classFP(mi.Owner))

	refClasses := map[string]*types.ClassInfo{}
	refUnits := map[string]bool{}
	if mi.Decl == nil {
		// Synthesized default constructor: lowering depends only on the
		// owner's shape (field initializers and the super chain), all of
		// which the deep owner fingerprint covers.
		h.str("synthesized")
		if ownerDecl := mi.Owner.Decl; ownerDecl != nil {
			u.File = ownerDecl.NamePos.File
			h.pos(ownerDecl.NamePos)
		}
		if mi.Owner.Super != nil && mi.Owner.Super.Ctor != nil {
			refUnits[mi.Owner.Super.Ctor.QualifiedName()] = true
		}
	} else {
		u.File = mi.Decl.NamePos.File
		hashMethodDecl(h, mi.Decl)
		b.collectRefs(mi.Decl, refClasses, refUnits)
	}
	// Referenced-class fingerprints, sorted by class name for a
	// deterministic key.
	names := make([]string, 0, len(refClasses))
	for name := range refClasses {
		names = append(names, name)
	}
	sort.Strings(names)
	h.num(int64(len(names)))
	for _, name := range names {
		h.str(name)
		h.str(b.classFP(refClasses[name]))
	}
	u.Key = h.sum()

	u.Refs = make([]string, 0, len(refUnits))
	for q := range refUnits {
		u.Refs = append(u.Refs, q)
	}
	sort.Strings(u.Refs)
	return u
}

// collectRefs walks a method body recording every class whose structure
// the lowering of this unit can observe (receiver/owner classes of
// called methods and accessed fields, named types in expressions and
// type expressions) and every unit it calls.
func (b *builder) collectRefs(m *ast.MethodDecl, classes map[string]*types.ClassInfo, units map[string]bool) {
	info := b.info
	addType := func(t types.Type) {
		for {
			switch tt := t.(type) {
			case *types.Class:
				if tt.Info != nil {
					classes[tt.Info.Name] = tt.Info
				}
				return
			case *types.Array:
				t = tt.Elem
			default:
				return
			}
		}
	}
	addTypeExpr := func(te ast.TypeExpr) {
		for {
			switch tt := te.(type) {
			case *ast.NamedType:
				if ci := info.Classes[tt.Name]; ci != nil {
					classes[ci.Name] = ci
				}
				return
			case *ast.ArrayType:
				te = tt.Elem
			default:
				return
			}
		}
	}
	for _, p := range m.Params {
		addTypeExpr(p.Type)
	}
	if m.Ret != nil {
		addTypeExpr(m.Ret)
	}
	walk(m.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.VarDecl:
			addTypeExpr(n.Type)
		case *ast.Cast:
			addTypeExpr(n.Type)
		case *ast.NewArray:
			addTypeExpr(n.Elem)
		case *ast.New:
			if ci := info.Classes[n.Class]; ci != nil {
				classes[ci.Name] = ci
				if ci.Ctor != nil {
					units[ci.Ctor.QualifiedName()] = true
				}
			}
		case *ast.InstanceOf:
			if ci := info.Classes[n.Class]; ci != nil {
				classes[ci.Name] = ci
			}
		case *ast.Ident:
			if ref := info.Refs[n]; ref != nil {
				if ref.Field != nil {
					classes[ref.Field.Owner.Name] = ref.Field.Owner
				}
				if ref.Class != nil {
					classes[ref.Class.Name] = ref.Class
				}
			}
		case *ast.FieldAccess:
			if fi := info.FieldRefs[n]; fi != nil {
				classes[fi.Owner.Name] = fi.Owner
			}
		case *ast.Call:
			if ciInfo := info.Calls[n]; ciInfo != nil && ciInfo.Method != nil {
				classes[ciInfo.Method.Owner.Name] = ciInfo.Method.Owner
				units[ciInfo.Method.QualifiedName()] = true
			}
		}
		if e, ok := n.(ast.Expr); ok {
			if t := info.ExprTypes[e]; t != nil {
				addType(t)
			}
		}
	})
}

// walk visits every statement and expression node reachable from n in
// source order.
func walk(n ast.Node, f func(ast.Node)) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.Block:
		if n == nil {
			return
		}
		f(n)
		for _, s := range n.Stmts {
			walk(s, f)
		}
	case *ast.VarDecl:
		f(n)
		walk(n.Init, f)
	case *ast.Assign:
		f(n)
		walk(n.LHS, f)
		walk(n.RHS, f)
	case *ast.If:
		f(n)
		walk(n.Cond, f)
		walk(n.Then, f)
		walk(n.Else, f)
	case *ast.While:
		f(n)
		walk(n.Cond, f)
		walk(n.Body, f)
	case *ast.For:
		f(n)
		walk(n.Init, f)
		walk(n.Cond, f)
		walk(n.Post, f)
		walk(n.Body, f)
	case *ast.Return:
		f(n)
		walk(n.Value, f)
	case *ast.ExprStmt:
		f(n)
		walk(n.X, f)
	case *ast.Throw:
		f(n)
		walk(n.X, f)
	case *ast.Assert:
		f(n)
		walk(n.Cond, f)
	case *ast.Break, *ast.Continue, *ast.This, *ast.IntLit, *ast.BoolLit,
		*ast.StrLit, *ast.NullLit, *ast.Ident:
		f(n)
	case *ast.Binary:
		f(n)
		walk(n.X, f)
		walk(n.Y, f)
	case *ast.Unary:
		f(n)
		walk(n.X, f)
	case *ast.FieldAccess:
		f(n)
		walk(n.X, f)
	case *ast.Index:
		f(n)
		walk(n.X, f)
		walk(n.I, f)
	case *ast.Call:
		f(n)
		walk(n.Recv, f)
		for _, a := range n.Args {
			walk(a, f)
		}
	case *ast.New:
		f(n)
		for _, a := range n.Args {
			walk(a, f)
		}
	case *ast.NewArray:
		f(n)
		walk(n.Len, f)
	case *ast.Cast:
		f(n)
		walk(n.X, f)
	case *ast.InstanceOf:
		f(n)
		walk(n.X, f)
	}
}

// hashMethodDecl folds the complete declaration AST — positions
// included, because lowered instructions carry source positions and the
// per-unit IR artifacts must be byte-addressable — into h.
func hashMethodDecl(h *hasher, m *ast.MethodDecl) {
	h.str("decl")
	h.pos(m.NamePos)
	h.num(boolBit(m.Static)<<1 | boolBit(m.IsCtor))
	h.str(m.Name)
	hashTypeExpr(h, m.Ret)
	h.num(int64(len(m.Params)))
	for _, p := range m.Params {
		h.pos(p.NamePos)
		hashTypeExpr(h, p.Type)
		h.str(p.Name)
	}
	hashNode(h, m.Body)
}

func hashTypeExpr(h *hasher, t ast.TypeExpr) {
	switch t := t.(type) {
	case nil:
		h.str("T:nil")
	case *ast.PrimType:
		h.str("T:prim")
		h.pos(t.KindPos)
		h.num(int64(t.Kind))
	case *ast.NamedType:
		h.str("T:named")
		h.pos(t.NamePos)
		h.str(t.Name)
	case *ast.ArrayType:
		h.str("T:array")
		hashTypeExpr(h, t.Elem)
	default:
		panic(fmt.Sprintf("depgraph: unhashable type expr %T", t))
	}
}

// hashNode folds one statement or expression subtree into h. Every
// concrete node type writes a distinct tag plus its position and
// payload, so structurally different trees never hash alike.
func hashNode(h *hasher, n ast.Node) {
	switch n := n.(type) {
	case nil:
		h.str("nil")
	case *ast.Block:
		if n == nil {
			h.str("nil")
			return
		}
		h.str("block")
		h.pos(n.LbracePos)
		h.num(int64(len(n.Stmts)))
		for _, s := range n.Stmts {
			hashNode(h, s)
		}
	case *ast.VarDecl:
		h.str("var")
		h.pos(n.NamePos)
		hashTypeExpr(h, n.Type)
		h.str(n.Name)
		hashNode(h, n.Init)
	case *ast.Assign:
		h.str("assign")
		h.pos(n.AssignPos)
		hashNode(h, n.LHS)
		hashNode(h, n.RHS)
	case *ast.If:
		h.str("if")
		h.pos(n.IfPos)
		hashNode(h, n.Cond)
		hashNode(h, n.Then)
		hashNode(h, n.Else)
	case *ast.While:
		h.str("while")
		h.pos(n.WhilePos)
		hashNode(h, n.Cond)
		hashNode(h, n.Body)
	case *ast.For:
		h.str("for")
		h.pos(n.ForPos)
		hashNode(h, n.Init)
		hashNode(h, n.Cond)
		hashNode(h, n.Post)
		hashNode(h, n.Body)
	case *ast.Return:
		h.str("return")
		h.pos(n.RetPos)
		hashNode(h, n.Value)
	case *ast.ExprStmt:
		h.str("exprstmt")
		hashNode(h, n.X)
	case *ast.Throw:
		h.str("throw")
		h.pos(n.ThrowPos)
		hashNode(h, n.X)
	case *ast.Assert:
		h.str("assert")
		h.pos(n.AssertPos)
		hashNode(h, n.Cond)
	case *ast.Break:
		h.str("break")
		h.pos(n.BreakPos)
	case *ast.Continue:
		h.str("continue")
		h.pos(n.ContinuePos)
	case *ast.IntLit:
		h.str("int")
		h.pos(n.LitPos)
		h.num(n.Value)
	case *ast.BoolLit:
		h.str("bool")
		h.pos(n.LitPos)
		h.num(boolBit(n.Value))
	case *ast.StrLit:
		h.str("str")
		h.pos(n.LitPos)
		h.str(n.Value)
	case *ast.NullLit:
		h.str("null")
		h.pos(n.LitPos)
	case *ast.Ident:
		h.str("ident")
		h.pos(n.NamePos)
		h.str(n.Name)
	case *ast.This:
		h.str("this")
		h.pos(n.ThisPos)
	case *ast.Binary:
		h.str("binary")
		h.pos(n.OpPos)
		h.num(int64(n.Op))
		hashNode(h, n.X)
		hashNode(h, n.Y)
	case *ast.Unary:
		h.str("unary")
		h.pos(n.OpPos)
		h.num(int64(n.Op))
		hashNode(h, n.X)
	case *ast.FieldAccess:
		h.str("field")
		h.pos(n.NamePos)
		h.str(n.Name)
		hashNode(h, n.X)
	case *ast.Index:
		h.str("index")
		hashNode(h, n.X)
		hashNode(h, n.I)
	case *ast.Call:
		h.str("call")
		h.pos(n.NamePos)
		h.str(n.Name)
		h.num(boolBit(n.IsSuper))
		hashNode(h, n.Recv)
		h.num(int64(len(n.Args)))
		for _, a := range n.Args {
			hashNode(h, a)
		}
	case *ast.New:
		h.str("new")
		h.pos(n.NewPos)
		h.str(n.Class)
		h.num(int64(len(n.Args)))
		for _, a := range n.Args {
			hashNode(h, a)
		}
	case *ast.NewArray:
		h.str("newarray")
		h.pos(n.NewPos)
		hashTypeExpr(h, n.Elem)
		hashNode(h, n.Len)
	case *ast.Cast:
		h.str("cast")
		h.pos(n.LparenPos)
		hashTypeExpr(h, n.Type)
		hashNode(h, n.X)
	case *ast.InstanceOf:
		h.str("instanceof")
		h.str(n.Class)
		hashNode(h, n.X)
	default:
		panic(fmt.Sprintf("depgraph: unhashable node %T", n))
	}
}

// Delta is the unit-level difference between two revisions of a
// program, computed by Diff. Because unit keys embed deep referenced-
// class fingerprints, Changed already contains the full transitive
// frontier of an edit — callers of a signature-changed method appear in
// it without a separate closure.
type Delta struct {
	Changed []string // units present in both revisions with different keys
	Added   []string // units only in the new revision
	Removed []string // units only in the old revision
}

// Empty reports whether the revisions have identical unit sets and keys.
func (d Delta) Empty() bool {
	return len(d.Changed) == 0 && len(d.Added) == 0 && len(d.Removed) == 0
}

// Dirty returns the union of Changed and Added as a set: the units that
// must be re-derived in the new revision.
func (d Delta) Dirty() map[string]bool {
	m := make(map[string]bool, len(d.Changed)+len(d.Added))
	for _, q := range d.Changed {
		m[q] = true
	}
	for _, q := range d.Added {
		m[q] = true
	}
	return m
}

// Diff computes the unit delta from old to new. Slices are sorted by
// qualified name.
func Diff(old, new *Graph) Delta {
	var d Delta
	for _, u := range new.Units {
		if prev, ok := old.Unit(u.QName); !ok {
			d.Added = append(d.Added, u.QName)
		} else if prev.Key != u.Key {
			d.Changed = append(d.Changed, u.QName)
		}
	}
	for _, u := range old.Units {
		if _, ok := new.Unit(u.QName); !ok {
			d.Removed = append(d.Removed, u.QName)
		}
	}
	sort.Strings(d.Changed)
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d
}

// TopoBatches partitions the units named in dirty into Kahn-style
// batches over the graph's call edges restricted to dirty units:
// every unit appears after all dirty units it references (callees
// before callers), so each batch can be re-derived concurrently once
// the previous batches are done. Call cycles (recursion) are broken
// deterministically by flushing the remaining units with the smallest
// in-degree, lowest name first; within a batch units keep graph (=
// lowering job) order.
func (g *Graph) TopoBatches(dirty map[string]bool) [][]string {
	// Restrict to dirty units that exist in this graph, in job order.
	var members []int
	inDirty := make(map[string]bool, len(dirty))
	for i, u := range g.Units {
		if dirty[u.QName] {
			members = append(members, i)
			inDirty[u.QName] = true
		}
	}
	indeg := make(map[string]int, len(members))
	rdeps := make(map[string][]string, len(members)) // callee → dirty callers
	for _, i := range members {
		u := g.Units[i]
		for _, ref := range u.Refs {
			if ref == u.QName || !inDirty[ref] {
				continue
			}
			indeg[u.QName]++
			rdeps[ref] = append(rdeps[ref], u.QName)
		}
	}
	remaining := len(members)
	done := make(map[string]bool, remaining)
	var batches [][]string
	for remaining > 0 {
		var batch []string
		for _, i := range members {
			q := g.Units[i].QName
			if !done[q] && indeg[q] == 0 {
				batch = append(batch, q)
			}
		}
		if len(batch) == 0 {
			// Cycle: flush the not-yet-done unit with minimal in-degree
			// (first by job order on ties) to break it.
			best, bestDeg := "", -1
			for _, i := range members {
				q := g.Units[i].QName
				if done[q] {
					continue
				}
				if bestDeg < 0 || indeg[q] < bestDeg {
					best, bestDeg = q, indeg[q]
				}
			}
			batch = []string{best}
		}
		for _, q := range batch {
			done[q] = true
			remaining--
			for _, caller := range rdeps[q] {
				if !done[caller] {
					indeg[caller]--
				}
			}
		}
		batches = append(batches, batch)
	}
	return batches
}

// Fingerprint returns a sha256 digest of the graph's full structure:
// units in order with keys, files, and reference lists. Two builds over
// the same checked program must produce identical fingerprints.
func (g *Graph) Fingerprint() string {
	h := newHasher()
	h.str("depgraph")
	h.num(int64(len(g.Units)))
	for _, u := range g.Units {
		h.str(u.QName)
		h.str(u.File)
		h.str(u.Key)
		h.num(boolBit(u.Synthesized))
		h.num(int64(len(u.Refs)))
		for _, r := range u.Refs {
			h.str(r)
		}
	}
	return h.sum()
}

// EncodeGraph returns the persistent payload for g (package artifact's
// "depg" payload). The graph is pure strings, so no relinking is needed
// to decode it.
func EncodeGraph(g *Graph) ([]byte, error) {
	var w artifact.Writer
	w.Uvarint(uint64(len(g.Units)))
	for _, u := range g.Units {
		w.String(u.QName)
		w.String(u.File)
		w.String(u.Key)
		w.Bool(u.Synthesized)
		w.Uvarint(uint64(len(u.Refs)))
		for _, r := range u.Refs {
			w.String(r)
		}
	}
	return w.Bytes(), nil
}

// DecodeGraph rebuilds a Graph from data. Any structural fault in data
// is an error; decode never panics on corrupt input.
func DecodeGraph(data []byte) (g *Graph, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			g, err = nil, fmt.Errorf("depgraph: decode: malformed payload: %v", rec)
		}
	}()
	r := artifact.NewReader(data)
	n := r.Len()
	g = &Graph{index: make(map[string]int, n)}
	for i := 0; i < n; i++ {
		u := Unit{QName: r.String(), File: r.String(), Key: r.String(), Synthesized: r.Bool()}
		nRefs := r.Len()
		for j := 0; j < nRefs; j++ {
			u.Refs = append(u.Refs, r.String())
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		g.index[u.QName] = len(g.Units)
		g.Units = append(g.Units, u)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return g, nil
}
