// Package csslice implements the paper's context-sensitive slicing
// algorithm (§5.3): a system dependence graph in which heap accesses
// are threaded through per-procedure heap parameters (formal-in/out
// nodes derived from the mod-ref analysis, actual-in/out nodes at call
// sites, following Ryder et al. [24]), sliced by the classic two-phase
// backward algorithm with tabulated summary edges (Reps et al. [20,21],
// Horwitz et al. [11]).
//
// The heap-parameter construction is exactly the scalability
// bottleneck the paper reports: the number of synthetic parameter
// nodes grows with |call sites| × |mod-ref sets| and explodes on large
// programs, which the scalability experiment demonstrates.
package csslice

import (
	"thinslice/internal/analysis/cdg"
	"thinslice/internal/analysis/modref"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/ir"
)

// Kind classifies an edge for slicer filtering.
type Kind int

// Edge kinds. Producer/base/control mirror the CI graph; Call edges
// ascend into callers, Ret edges descend into callees. Summary edges
// are same-level shortcuts installed by the tabulation.
const (
	KindProducer Kind = iota
	KindBase
	KindControl
	KindCall        // crossing from callee entry to caller (ascend)
	KindCallControl // callee entry control-dependence on the call site
	KindRet         // crossing from caller to callee exit (descend)
)

// Node is a CS-SDG node index.
type Node int32

// Edge is one incoming dependence of a node.
type Edge struct {
	Src  Node
	Kind Kind
	Site *ir.Call // for Call/CallControl/Ret edges
}

type nodeKind int

const (
	nkInstr nodeKind = iota
	nkFormalIn
	nkFormalOut
	nkActualIn
	nkActualOut
	nkRetOut // synthetic per-method exit for the return value
)

type nodeInfo struct {
	kind   nodeKind
	ins    ir.Instr // for nkInstr
	method *ir.Method
	loc    modref.Loc // for heap parameter nodes
	site   *ir.Call   // for actual-in/out
}

// Graph is the context-sensitive SDG.
type Graph struct {
	Prog *ir.Program
	Pts  *pointsto.Result
	MR   *modref.Result

	nodes []nodeInfo
	deps  [][]Edge

	instrNode map[ir.Instr]Node
	formalIn  map[*ir.Method]map[modref.Loc]Node
	formalOut map[*ir.Method]map[modref.Loc]Node
	actualIn  map[*ir.Call]map[modref.Loc]Node
	actualOut map[*ir.Call]map[modref.Loc]Node
	retOut    map[*ir.Method]Node

	// entries/exits per method, for summary computation.
	entries map[*ir.Method][]Node
	exits   map[*ir.Method][]Node
	// methodOf maps every node to its enclosing method.
	methodOf []*ir.Method
	// callsIn lists the call instructions of each method.
	callsIn map[*ir.Method][]*ir.Call
	// calleesOf are the possible targets of each call.
	calleesOf map[*ir.Call][]*ir.Method
	// argNodes lists, per call, the nodes feeding each formal param
	// (receiver first for instance methods); -1 marks absent defs.
	argNodes map[*ir.Call][]Node
	// entryDependent lists each method's statements with no
	// intraprocedural control dependence.
	entryDependent map[*ir.Method][]Node
}

// NumNodes returns the node count including heap parameter nodes —
// the quantity whose growth breaks CS slicing on large programs.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumHeapParamNodes returns only the synthetic heap parameter nodes.
func (g *Graph) NumHeapParamNodes() int {
	n := 0
	for _, ni := range g.nodes {
		switch ni.kind {
		case nkFormalIn, nkFormalOut, nkActualIn, nkActualOut:
			n++
		}
	}
	return n
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, d := range g.deps {
		n += len(d)
	}
	return n
}

// InstrOf returns the instruction of an instruction node, or nil for
// synthetic nodes.
func (g *Graph) InstrOf(n Node) ir.Instr { return g.nodes[n].ins }

// NodeOf returns the node of an instruction.
func (g *Graph) NodeOf(ins ir.Instr) (Node, bool) {
	n, ok := g.instrNode[ins]
	return n, ok
}

func (g *Graph) newNode(ni nodeInfo) Node {
	n := Node(len(g.nodes))
	g.nodes = append(g.nodes, ni)
	g.deps = append(g.deps, nil)
	g.methodOf = append(g.methodOf, ni.method)
	return n
}

func (g *Graph) addEdge(to Node, e Edge) {
	g.deps[to] = append(g.deps[to], e)
}

// Build constructs the CS-SDG for the methods reachable in pts.
func Build(prog *ir.Program, pts *pointsto.Result, mr *modref.Result) *Graph {
	g := &Graph{
		Prog:           prog,
		Pts:            pts,
		MR:             mr,
		instrNode:      make(map[ir.Instr]Node),
		formalIn:       make(map[*ir.Method]map[modref.Loc]Node),
		formalOut:      make(map[*ir.Method]map[modref.Loc]Node),
		actualIn:       make(map[*ir.Call]map[modref.Loc]Node),
		actualOut:      make(map[*ir.Call]map[modref.Loc]Node),
		retOut:         make(map[*ir.Method]Node),
		entries:        make(map[*ir.Method][]Node),
		exits:          make(map[*ir.Method][]Node),
		callsIn:        make(map[*ir.Method][]*ir.Call),
		calleesOf:      make(map[*ir.Call][]*ir.Method),
		argNodes:       make(map[*ir.Call][]Node),
		entryDependent: make(map[*ir.Method][]Node),
	}
	methods := pts.ReachableMethods()

	// Pass 1: create nodes.
	for _, m := range methods {
		m.Instrs(func(ins ir.Instr) {
			g.instrNode[ins] = g.newNode(nodeInfo{kind: nkInstr, ins: ins, method: m})
		})
		g.formalIn[m] = make(map[modref.Loc]Node)
		g.formalOut[m] = make(map[modref.Loc]Node)
		for _, loc := range mr.Ref(m) {
			n := g.newNode(nodeInfo{kind: nkFormalIn, method: m, loc: loc})
			g.formalIn[m][loc] = n
			g.entries[m] = append(g.entries[m], n)
		}
		for _, loc := range mr.Mod(m) {
			n := g.newNode(nodeInfo{kind: nkFormalOut, method: m, loc: loc})
			g.formalOut[m][loc] = n
			g.exits[m] = append(g.exits[m], n)
		}
		g.retOut[m] = g.newNode(nodeInfo{kind: nkRetOut, method: m})
		g.exits[m] = append(g.exits[m], g.retOut[m])
		for _, p := range m.Params {
			g.entries[m] = append(g.entries[m], g.instrNode[p])
		}
	}
	// Actual-in/out nodes per call site, sized by the union of callee
	// mod-ref sets.
	for _, m := range methods {
		m.Instrs(func(ins ir.Instr) {
			call, ok := ins.(*ir.Call)
			if !ok {
				return
			}
			g.callsIn[m] = append(g.callsIn[m], call)
			g.calleesOf[call] = pts.Callees(call)
			ain := make(map[modref.Loc]Node)
			aout := make(map[modref.Loc]Node)
			for _, callee := range g.calleesOf[call] {
				for _, loc := range mr.Ref(callee) {
					if _, ok := ain[loc]; !ok {
						ain[loc] = g.newNode(nodeInfo{kind: nkActualIn, method: m, loc: loc, site: call})
					}
				}
				for _, loc := range mr.Mod(callee) {
					if _, ok := aout[loc]; !ok {
						aout[loc] = g.newNode(nodeInfo{kind: nkActualOut, method: m, loc: loc, site: call})
					}
				}
			}
			g.actualIn[call] = ain
			g.actualOut[call] = aout
		})
	}

	// Pass 2: edges.
	for _, m := range methods {
		g.buildIntra(m)
	}
	for _, m := range methods {
		for _, call := range g.callsIn[m] {
			g.linkCall(m, call)
		}
	}
	return g
}

// locsOfAccess returns the abstract locations a heap access touches.
func (g *Graph) locsOfAccess(ins ir.Instr) []modref.Loc {
	switch ins := ins.(type) {
	case *ir.GetField:
		var out []modref.Loc
		for _, o := range g.Pts.PointsTo(ins.Obj) {
			out = append(out, modref.Loc{Obj: o, Field: ins.Field})
		}
		return out
	case *ir.SetField:
		var out []modref.Loc
		for _, o := range g.Pts.PointsTo(ins.Obj) {
			out = append(out, modref.Loc{Obj: o, Field: ins.Field})
		}
		return out
	case *ir.ArrayLoad:
		var out []modref.Loc
		for _, o := range g.Pts.PointsTo(ins.Arr) {
			out = append(out, modref.Loc{Obj: o})
		}
		return out
	case *ir.ArrayStore:
		var out []modref.Loc
		for _, o := range g.Pts.PointsTo(ins.Arr) {
			out = append(out, modref.Loc{Obj: o})
		}
		return out
	case *ir.ArrayLen:
		var out []modref.Loc
		for _, o := range g.Pts.PointsTo(ins.Arr) {
			out = append(out, modref.Loc{Obj: o, ArrayLen: true})
		}
		return out
	case *ir.NewArray:
		var out []modref.Loc
		for _, o := range g.Pts.PointsTo(ins.Dst) {
			out = append(out, modref.Loc{Obj: o, ArrayLen: true})
		}
		return out
	case *ir.GetStatic:
		return []modref.Loc{{Field: ins.Field}}
	case *ir.SetStatic:
		return []modref.Loc{{Field: ins.Field}}
	}
	return nil
}

func isHeapLoad(ins ir.Instr) bool {
	switch ins.(type) {
	case *ir.GetField, *ir.ArrayLoad, *ir.ArrayLen, *ir.GetStatic:
		return true
	}
	return false
}

func isHeapStore(ins ir.Instr) bool {
	switch ins.(type) {
	case *ir.SetField, *ir.ArrayStore, *ir.SetStatic, *ir.NewArray:
		return true
	}
	return false
}

// buildIntra adds the intraprocedural edges of m: local def-use,
// flow-insensitive heap threading through formal/actual parameter
// nodes (paper §5.3), and control dependences.
func (g *Graph) buildIntra(m *ir.Method) {
	// Index stores and actual-outs by location.
	storesByLoc := make(map[modref.Loc][]Node)
	m.Instrs(func(ins ir.Instr) {
		if isHeapStore(ins) {
			n := g.instrNode[ins]
			for _, loc := range g.locsOfAccess(ins) {
				storesByLoc[loc] = append(storesByLoc[loc], n)
			}
		}
	})
	// sourcesOf returns the in-method producers of a location's value:
	// same-method stores, formal-in, and actual-outs of calls.
	sourcesOf := func(loc modref.Loc) []Edge {
		var out []Edge
		for _, st := range storesByLoc[loc] {
			out = append(out, Edge{Src: st, Kind: KindProducer})
		}
		if fi, ok := g.formalIn[m][loc]; ok {
			out = append(out, Edge{Src: fi, Kind: KindProducer})
		}
		for _, call := range g.callsIn[m] {
			if ao, ok := g.actualOut[call][loc]; ok {
				out = append(out, Edge{Src: ao, Kind: KindProducer})
			}
		}
		return out
	}

	cg := cdg.Build(m)
	var node Node
	addUse := func(u *ir.Reg, role ir.Role) {
		if u.Def == nil {
			return
		}
		kind := KindProducer
		if role == ir.RoleBase {
			kind = KindBase
		}
		g.addEdge(node, Edge{Src: g.instrNode[u.Def], Kind: kind})
	}
	m.Instrs(func(ins ir.Instr) {
		node = g.instrNode[ins]
		// Local def-use (call operands feed actual-in/param linkage
		// instead, handled in linkCall).
		if _, isCall := ins.(*ir.Call); !isCall {
			ins.EachUse(addUse)
		}
		// Heap loads read the location's in-method sources.
		if isHeapLoad(ins) {
			for _, loc := range g.locsOfAccess(ins) {
				for _, e := range g.deduped(sourcesOf(loc), node) {
					g.addEdge(node, e)
				}
			}
		}
		// Returns feed the synthetic return-out exit.
		if ret, ok := ins.(*ir.Return); ok && ret.Val != nil {
			g.addEdge(g.retOut[m], Edge{Src: node, Kind: KindProducer})
		}
		// Control dependence.
		for _, br := range cg.InstrDeps(ins) {
			if br != ins {
				g.addEdge(node, Edge{Src: g.instrNode[br], Kind: KindControl})
			}
		}
	})
	// Formal-outs collect the location's in-method sources (including
	// the weak pass-through from formal-in).
	for loc, fo := range g.formalOut[m] {
		for _, e := range g.deduped(sourcesOf(loc), fo) {
			g.addEdge(fo, e)
		}
	}
	// Actual-ins collect the location's in-method sources too.
	for _, call := range g.callsIn[m] {
		for loc, ai := range g.actualIn[call] {
			for _, e := range g.deduped(sourcesOf(loc), ai) {
				g.addEdge(ai, e)
			}
		}
	}
	// Entry-dependent statements are control dependent on call sites
	// (added in linkCall); record which instructions those are.
	m.Instrs(func(ins ir.Instr) {
		if cg.DependsOnEntry(ins) {
			g.entryDependent[m] = append(g.entryDependent[m], g.instrNode[ins])
		}
	})
}

// deduped drops self-edges and duplicate sources.
func (g *Graph) deduped(es []Edge, self Node) []Edge {
	seen := make(map[Node]bool, len(es))
	var out []Edge
	for _, e := range es {
		if e.Src == self || seen[e.Src] {
			continue
		}
		seen[e.Src] = true
		out = append(out, e)
	}
	return out
}

// linkCall connects a call site to each possible callee.
func (g *Graph) linkCall(caller *ir.Method, call *ir.Call) {
	callNode := g.instrNode[call]
	for _, callee := range g.calleesOf[call] {
		params := callee.Params
		offset := 0
		var args []Node
		if !callee.Sig.Static {
			offset = 1
			if call.Recv != nil && call.Recv.Def != nil {
				args = append(args, g.instrNode[call.Recv.Def])
			} else {
				args = append(args, -1)
			}
		}
		for _, a := range call.Args {
			if a.Def != nil {
				args = append(args, g.instrNode[a.Def])
			} else {
				args = append(args, -1)
			}
		}
		_ = offset // args already parallel params (receiver first)
		for i, p := range params {
			if i < len(args) && args[i] >= 0 {
				g.addEdge(g.instrNode[p], Edge{Src: args[i], Kind: KindCall, Site: call})
			}
		}
		g.argNodes[call] = args
		// Heap parameters.
		for loc, fi := range g.formalIn[callee] {
			if ai, ok := g.actualIn[call][loc]; ok {
				g.addEdge(fi, Edge{Src: ai, Kind: KindCall, Site: call})
			}
		}
		for loc, ao := range g.actualOut[call] {
			if fo, ok := g.formalOut[callee][loc]; ok {
				g.addEdge(ao, Edge{Src: fo, Kind: KindRet, Site: call})
			}
		}
		// Return value.
		if call.Dst != nil {
			g.addEdge(callNode, Edge{Src: g.retOut[callee], Kind: KindRet, Site: call})
		}
		// Entry control dependence.
		for _, n := range g.entryDependent[callee] {
			g.addEdge(n, Edge{Src: callNode, Kind: KindCallControl, Site: call})
		}
	}
}
