package csslice_test

import (
	"testing"

	"thinslice/internal/analysis/modref"
	"thinslice/internal/analyzer"
	"thinslice/internal/csslice"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
)

func build(t *testing.T, src string, opts ...analyzer.Option) (*analyzer.Analysis, *csslice.Graph) {
	t.Helper()
	a, err := analyzer.Analyze(map[string]string{"t.mj": src}, opts...)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	mr := modref.Compute(a.Prog, a.Pts)
	return a, csslice.Build(a.Prog, a.Pts, mr)
}

func seedAt(t *testing.T, a *analyzer.Analysis, line int) []ir.Instr {
	t.Helper()
	seeds := a.SeedsAt("t.mj", line)
	if len(seeds) == 0 {
		t.Fatalf("no seeds at line %d", line)
	}
	return seeds
}

func sliceHasLine(slice map[ir.Instr]bool, line int) bool {
	for ins := range slice {
		if p := ins.Pos(); p.File == "t.mj" && p.Line == line {
			return true
		}
	}
	return false
}

func TestCSSliceBasicFlow(t *testing.T) {
	src := `class Main {
    static int id(int x) {
        return x; // RET
    }
    static void main() {
        int a = inputInt(); // IN
        int b = Main.id(a); // CALL
        print(b); // SEED
    }
}
`
	a, g := build(t, src)
	s := csslice.NewSlicer(g, true, false)
	slice := s.Slice(seedAt(t, a, papercases.Line(src, "SEED"))...)
	for _, m := range []string{"IN", "CALL", "RET"} {
		if !sliceHasLine(slice, papercases.Line(src, m)) {
			t.Errorf("CS thin slice missing %s", m)
		}
	}
}

// TestContextSensitivityAvoidsUnrealizablePaths is the defining test:
// two calls to the same identity function must not exchange values
// through mismatched call/return pairs (paper §5.2's "unrealizable
// paths" caveat about the CI algorithm).
func TestContextSensitivityAvoidsUnrealizablePaths(t *testing.T) {
	src := `class Main {
    static int id(int x) {
        return x;
    }
    static void main() {
        int a = inputInt(); // A
        int b = inputInt(); // B
        int ra = Main.id(a); // CALLA
        int rb = Main.id(b); // CALLB
        print(ra); // SEED
        print(rb);
    }
}
`
	a, g := build(t, src)
	cs := csslice.NewSlicer(g, true, false)
	slice := cs.Slice(seedAt(t, a, papercases.Line(src, "SEED"))...)
	if !sliceHasLine(slice, papercases.Line(src, "A")) {
		t.Error("CS slice missing the matching input A")
	}
	if sliceHasLine(slice, papercases.Line(src, "B")) {
		t.Error("CS slice must exclude the unrealizable-path input B")
	}
	// The context-insensitive thin slicer, by contrast, includes both
	// (a precision loss §5.2 accepts for scalability).
	ci := a.ThinSlicer().Slice(seedAt(t, a, papercases.Line(src, "SEED"))...)
	if !ci.ContainsLine("t.mj", papercases.Line(src, "B")) {
		t.Error("CI slice should include B (unrealizable path)")
	}
}

func TestHeapParamsCarryFieldFlow(t *testing.T) {
	src := `class Box {
    int v;
    Box() { }
}
class Main {
    static void fill(Box b) {
        b.v = inputInt(); // STORE
    }
    static int drain(Box b) {
        return b.v; // LOAD
    }
    static void main() {
        Box b = new Box();
        Main.fill(b);
        print(Main.drain(b)); // SEED
    }
}
`
	a, g := build(t, src)
	s := csslice.NewSlicer(g, true, false)
	slice := s.Slice(seedAt(t, a, papercases.Line(src, "SEED"))...)
	for _, m := range []string{"STORE", "LOAD"} {
		if !sliceHasLine(slice, papercases.Line(src, m)) {
			t.Errorf("CS slice missing %s (heap parameter threading broken)", m)
		}
	}
}

func TestHeapParamsContextSeparation(t *testing.T) {
	// Two boxes filled through the same helper: the CS slicer keeps
	// the stores apart per call chain only when the heap partitions
	// differ (two allocation sites), which they do here.
	src := `class Box {
    int v;
    Box() { }
}
class Main {
    static int read(Box b) {
        return b.v;
    }
    static void main() {
        Box b1 = new Box(); // ALLOC1
        Box b2 = new Box(); // ALLOC2
        b1.v = inputInt(); // STORE1
        b2.v = inputInt(); // STORE2
        print(Main.read(b1)); // SEED
    }
}
`
	a, g := build(t, src)
	s := csslice.NewSlicer(g, true, false)
	slice := s.Slice(seedAt(t, a, papercases.Line(src, "SEED"))...)
	if !sliceHasLine(slice, papercases.Line(src, "STORE1")) {
		t.Error("CS slice missing STORE1")
	}
	if sliceHasLine(slice, papercases.Line(src, "STORE2")) {
		t.Error("CS slice must exclude the other box's store")
	}
}

func TestCSThinSubsetOfCSTraditional(t *testing.T) {
	src := papercases.FirstNames
	a, err := analyzer.Analyze(map[string]string{papercases.FirstNamesFile: src})
	if err != nil {
		t.Fatal(err)
	}
	mr := modref.Compute(a.Prog, a.Pts)
	g := csslice.Build(a.Prog, a.Pts, mr)
	thin := csslice.NewSlicer(g, true, false)
	trad := csslice.NewSlicer(g, false, true)
	seeds := a.SeedsAt(papercases.FirstNamesFile, papercases.Line(src, "SEED"))
	st := thin.Slice(seeds...)
	sr := trad.Slice(seeds...)
	for ins := range st {
		if !sr[ins] {
			t.Fatalf("CS thin ⊄ CS traditional: %s", ins)
		}
	}
	if len(st) >= len(sr) {
		t.Errorf("CS thin (%d) should be smaller than CS traditional (%d)", len(st), len(sr))
	}
}

// TestCSSubsetOfCI: realizable-path slices never exceed the
// context-insensitive ones (at source-line granularity, comparing
// like-for-like thin slicers).
func TestCSSubsetOfCI(t *testing.T) {
	for _, c := range []struct{ file, src string }{
		{papercases.FirstNamesFile, papercases.FirstNames},
		{papercases.FileBugFile, papercases.FileBug},
		{papercases.ToughCastFile, papercases.ToughCast},
	} {
		a, err := analyzer.Analyze(map[string]string{c.file: c.src})
		if err != nil {
			t.Fatal(err)
		}
		mr := modref.Compute(a.Prog, a.Pts)
		g := csslice.Build(a.Prog, a.Pts, mr)
		cs := csslice.NewSlicer(g, true, false)
		ci := a.ThinSlicer()
		count := 0
		for _, m := range a.Pts.ReachableMethods() {
			m.Instrs(func(seed ir.Instr) {
				count++
				if count > 150 {
					return
				}
				if _, ok := seed.(*ir.Print); !ok {
					return
				}
				csLines := csslice.SliceLines(cs.Slice(seed))
				ciSlice := ci.Slice(seed)
				ciLines := make(map[string]bool)
				for _, p := range ciSlice.Lines() {
					ciLines[p.String()] = true
				}
				for p := range csLines {
					if !ciLines[p.String()] {
						t.Errorf("%s: CS slice line %s not in CI slice (seed %s)", c.file, p, seed)
					}
				}
			})
		}
	}
}

func TestHeapParamNodeCountsGrow(t *testing.T) {
	// The CS graph must contain heap parameter nodes; on the
	// container-heavy Figure 1 program they outnumber the
	// instructions' own nodes' tenth.
	src := papercases.FirstNames
	a, err := analyzer.Analyze(map[string]string{papercases.FirstNamesFile: src})
	if err != nil {
		t.Fatal(err)
	}
	mr := modref.Compute(a.Prog, a.Pts)
	g := csslice.Build(a.Prog, a.Pts, mr)
	if g.NumHeapParamNodes() == 0 {
		t.Fatal("no heap parameter nodes")
	}
	if g.NumNodes() <= a.Graph.NumNodes() {
		t.Logf("CS nodes %d vs CI nodes %d", g.NumNodes(), a.Graph.NumNodes())
	}
}
