package csslice

import (
	"sort"

	"thinslice/internal/ir"
	"thinslice/internal/lang/token"
)

// Slicer computes context-sensitive backward slices over a CS-SDG
// using the classic two-phase algorithm with tabulated summary edges:
// phase 1 ascends into callers (never descending through returns),
// phase 2 descends into callees (never ascending), and summary edges
// provide the same-level shortcuts across call sites. Realizable-path
// reachability is exactly the partially balanced parentheses problem
// of paper §5.3.
type Slicer struct {
	G *Graph
	// Thin restricts traversal to producer flow.
	Thin bool
	// WithControl includes control dependences (traditional only).
	WithControl bool

	// summaries[m] maps each exit node of m to the entry nodes that
	// reach it along same-level realizable paths.
	summaries map[*ir.Method]map[Node][]Node
}

// NewSlicer builds a slicer and computes the summary edges under the
// requested edge filter.
func NewSlicer(g *Graph, thin, withControl bool) *Slicer {
	s := &Slicer{G: g, Thin: thin, WithControl: withControl}
	s.computeSummaries()
	return s
}

// followsIntra reports whether intraprocedural edges of kind k are
// traversed.
func (s *Slicer) followsIntra(k Kind) bool {
	switch k {
	case KindProducer:
		return true
	case KindBase:
		return !s.Thin
	case KindControl:
		return !s.Thin && s.WithControl
	}
	return false
}

func (s *Slicer) followsCallControl() bool { return !s.Thin && s.WithControl }

// entryIndex gives each entry node of a method its position, so
// summaries can be mapped to caller-side nodes.
func (s *Slicer) callerSideOf(call *ir.Call, callee *ir.Method, entry Node) (Node, bool) {
	g := s.G
	ni := g.nodes[entry]
	switch ni.kind {
	case nkInstr:
		// A formal parameter: map by its index.
		p, ok := ni.ins.(*ir.Param)
		if !ok {
			return 0, false
		}
		args := g.argNodes[call]
		if p.Index < len(args) && args[p.Index] >= 0 {
			return args[p.Index], true
		}
	case nkFormalIn:
		if ai, ok := g.actualIn[call][ni.loc]; ok {
			return ai, true
		}
	}
	return 0, false
}

// computeSummaries runs the tabulation: per-method backward closures
// from each exit node, using callee summaries at internal call sites,
// iterated to fixpoint for recursion.
func (s *Slicer) computeSummaries() {
	g := s.G
	s.summaries = make(map[*ir.Method]map[Node][]Node)
	methods := g.Pts.ReachableMethods()
	// callersOf, for requeuing when a callee's summary grows.
	callersOf := make(map[*ir.Method][]*ir.Method)
	for _, m := range methods {
		for _, call := range g.callsIn[m] {
			for _, callee := range g.calleesOf[call] {
				callersOf[callee] = append(callersOf[callee], m)
			}
		}
		s.summaries[m] = make(map[Node][]Node)
	}
	inWork := make(map[*ir.Method]bool)
	var work []*ir.Method
	push := func(m *ir.Method) {
		if !inWork[m] {
			inWork[m] = true
			work = append(work, m)
		}
	}
	for _, m := range methods {
		push(m)
	}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[m] = false
		changed := false
		for _, exit := range g.exits[m] {
			entries := s.sameLevelEntries(m, exit)
			if len(entries) > len(s.summaries[m][exit]) {
				s.summaries[m][exit] = entries
				changed = true
			}
		}
		if changed {
			for _, caller := range callersOf[m] {
				push(caller)
			}
		}
	}
}

// sameLevelEntries computes the entry nodes of m reaching exit via
// same-level paths, using current callee summaries.
func (s *Slicer) sameLevelEntries(m *ir.Method, exit Node) []Node {
	g := s.G
	visited := make(map[Node]bool)
	var entries []Node
	isEntry := make(map[Node]bool)
	for _, en := range g.entries[m] {
		isEntry[en] = true
	}
	var stack []Node
	visit := func(n Node) {
		if !visited[n] {
			visited[n] = true
			stack = append(stack, n)
			if isEntry[n] {
				entries = append(entries, n)
			}
		}
	}
	visit(exit)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.deps[n] {
			if s.followsIntra(e.Kind) {
				visit(e.Src)
			}
		}
		s.applySummaries(n, visit)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	return entries
}

// applySummaries installs same-level shortcuts at call boundaries: for
// a call-result or actual-out node, jump to the caller-side nodes whose
// values the callee's matching exit depends on.
func (s *Slicer) applySummaries(n Node, visit func(Node)) {
	g := s.G
	ni := g.nodes[n]
	switch ni.kind {
	case nkInstr:
		call, ok := ni.ins.(*ir.Call)
		if !ok || call.Dst == nil {
			return
		}
		for _, callee := range g.calleesOf[call] {
			for _, entry := range s.summaries[callee][g.retOut[callee]] {
				if src, ok := s.callerSideOf(call, callee, entry); ok {
					visit(src)
				}
			}
		}
	case nkActualOut:
		call := ni.site
		for _, callee := range g.calleesOf[call] {
			fo, ok := g.formalOut[callee][ni.loc]
			if !ok {
				continue
			}
			for _, entry := range s.summaries[callee][fo] {
				if src, ok := s.callerSideOf(call, callee, entry); ok {
					visit(src)
				}
			}
		}
	}
}

// Slice computes the context-sensitive backward slice from the seed
// instructions, returned as a set of instructions.
func (s *Slicer) Slice(seeds ...ir.Instr) map[ir.Instr]bool {
	g := s.G
	phase1 := make(map[Node]bool)
	phase2 := make(map[Node]bool)

	// Phase 1: ascend only.
	var stack []Node
	visit1 := func(n Node) {
		if !phase1[n] {
			phase1[n] = true
			stack = append(stack, n)
		}
	}
	for _, seed := range seeds {
		if n, ok := g.instrNode[seed]; ok {
			visit1(n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.deps[n] {
			switch {
			case s.followsIntra(e.Kind):
				visit1(e.Src)
			case e.Kind == KindCall:
				visit1(e.Src)
			case e.Kind == KindCallControl && s.followsCallControl():
				visit1(e.Src)
			}
		}
		s.applySummaries(n, visit1)
	}
	// Phase 2: descend only, seeded with everything phase 1 reached.
	var stack2 []Node
	visit2 := func(n Node) {
		if !phase1[n] && !phase2[n] {
			phase2[n] = true
			stack2 = append(stack2, n)
		}
	}
	for n := range phase1 {
		stack2 = append(stack2, n)
	}
	for len(stack2) > 0 {
		n := stack2[len(stack2)-1]
		stack2 = stack2[:len(stack2)-1]
		for _, e := range g.deps[n] {
			switch {
			case s.followsIntra(e.Kind):
				visit2(e.Src)
			case e.Kind == KindRet:
				visit2(e.Src)
			}
		}
		s.applySummaries(n, visit2)
	}
	out := make(map[ir.Instr]bool)
	collect := func(set map[Node]bool) {
		for n := range set {
			if ins := g.nodes[n].ins; ins != nil {
				out[ins] = true
			}
		}
	}
	collect(phase1)
	collect(phase2)
	return out
}

// SliceLines projects a slice onto distinct source lines.
func SliceLines(slice map[ir.Instr]bool) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	for ins := range slice {
		p := ins.Pos()
		p.Col = 0
		if p.IsValid() {
			out[p] = true
		}
	}
	return out
}
