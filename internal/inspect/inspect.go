// Package inspect simulates realistic use of a slicing tool, following
// paper §6.1: the user explores the dependence graph breadth-first
// from the seed (as in CodeSurfer-style browsing, after Renieris and
// Reiss), and we count how many source statements must be inspected
// before all desired statements have been discovered.
//
// Statements are counted at source-line granularity, since that is
// what a user inspects. Control dependences are pre-identified per
// task (the paper's #Control column) and made available to every
// slicer equally: the traversal may cross up to that many control
// dependence edges, so a guard reached this way counts as an inspected
// statement for thin and traditional slicing alike.
package inspect

import (
	"thinslice/internal/core"
	"thinslice/internal/ir"
	"thinslice/internal/lang/token"
	"thinslice/internal/sdg"
	anasession "thinslice/internal/session"
)

// Line is a source statement identity (file and line).
type Line struct {
	File string
	Line int
}

// LineOf returns the Line of an instruction.
func LineOf(ins ir.Instr) Line {
	p := ins.Pos()
	return Line{File: p.File, Line: p.Line}
}

// PosLine converts a token position.
func PosLine(p token.Pos) Line { return Line{File: p.File, Line: p.Line} }

// Result is the outcome of a simulated inspection session.
type Result struct {
	// Inspected is the number of distinct source statements visited
	// until (and including) the last desired statement, or the total
	// visited when not all desired statements were found.
	Inspected int
	// Found reports whether every desired statement was discovered.
	Found bool
	// Order is the visit order of source statements.
	Order []Line
}

// Budget bounds the explainer edges an inspection session may cross,
// mirroring the per-task allowances of paper §6.1–6.2: pre-identified
// control dependences and (for tasks like nanoxml-5) one level of
// aliasing explanation.
type Budget struct {
	// BaseHops is the number of base-pointer edges a path may cross
	// (aliasing-explanation levels).
	BaseHops int
	// ControlHops is the number of control dependence edges a path may
	// cross (the paper's #Control).
	ControlHops int
}

// session tracks visited lines and remaining goals during a BFS.
type session struct {
	g           *sdg.Graph
	visitedLine map[Line]bool
	remaining   map[Line]bool
	res         *Result
	count       int
}

func newSession(g *sdg.Graph, desired map[Line]bool) *session {
	s := &session{
		g:           g,
		visitedLine: make(map[Line]bool),
		remaining:   make(map[Line]bool, len(desired)),
		res:         &Result{},
	}
	for l := range desired {
		s.remaining[l] = true
	}
	return s
}

func (s *session) visit(n sdg.Node) {
	l := LineOf(s.g.InstrOf(n))
	if l.Line == 0 || s.visitedLine[l] {
		return
	}
	s.visitedLine[l] = true
	s.res.Order = append(s.res.Order, l)
	s.count++
	if s.remaining[l] {
		delete(s.remaining, l)
		if len(s.remaining) == 0 {
			s.res.Inspected = s.count
			s.res.Found = true
		}
	}
}

func (s *session) done() bool { return len(s.remaining) == 0 }

func (s *session) finish() Result {
	if !s.res.Found {
		s.res.Inspected = s.count
	}
	return *s.res
}

// BFS simulates breadth-first inspection with a zero budget: only
// edges the slicer follows are traversed.
func BFS(s *core.Slicer, seeds []ir.Instr, desired map[Line]bool) Result {
	return BFSBudget(s, seeds, desired, Budget{})
}

// BFSBudget simulates breadth-first inspection of the dependence graph
// from the seeds. Paths traverse the slicer's edges freely and may
// additionally spend the budget on base-pointer and control edges.
// Call sites mediating parameter flow (Dep.Via) are surfaced as
// visited statements, as a browsing tool shows them.
func BFSBudget(s *core.Slicer, seeds []ir.Instr, desired map[Line]bool, budget Budget) Result {
	g := s.G
	sess := newSession(g, desired)
	type state struct {
		n          sdg.Node
		base, ctrl int // budget spent so far on this path
	}
	// best[n] is the Pareto frontier of budgets already explored for n;
	// a new state is pushed only if no recorded state dominates it.
	best := make(map[sdg.Node][][2]int)
	var queue []state
	push := func(n sdg.Node, base, ctrl int) {
		for _, b := range best[n] {
			if b[0] <= base && b[1] <= ctrl {
				return
			}
		}
		best[n] = append(best[n], [2]int{base, ctrl})
		queue = append(queue, state{n, base, ctrl})
	}
	for _, seed := range seeds {
		for _, n := range g.NodesOf(seed) {
			push(n, 0, 0)
		}
	}
	for len(queue) > 0 && !sess.done() {
		st := queue[0]
		queue = queue[1:]
		sess.visit(st.n)
		if sess.done() {
			break
		}
		for _, d := range g.Deps(st.n) {
			switch {
			case s.Follows(d.Kind):
				if d.Via != sdg.NoNode {
					sess.visit(d.Via)
					if sess.done() {
						break
					}
				}
				push(d.Src, st.base, st.ctrl)
			case d.Kind == sdg.EdgeBase && st.base < budget.BaseHops:
				push(d.Src, st.base+1, st.ctrl)
			case d.Kind == sdg.EdgeControl && st.ctrl < budget.ControlHops:
				// Only intraprocedural control dependences (guards
				// lexically near the slice, §4.2) are pre-identified;
				// interprocedural call-control is aliasing-style
				// explainer material covered by BaseHops.
				push(d.Src, st.base, st.ctrl+1)
			}
		}
	}
	return sess.finish()
}

// Task is one evaluation task: a seed position and the desired
// statements whose discovery completes the task, plus the number of
// relevant control dependences the user is allowed (and expected) to
// follow — the paper's #Control column.
type Task struct {
	Name     string
	SeedFile string
	SeedLine int
	Desired  []Line
	// ControlDeps is the number of relevant control dependences for
	// the task (the paper's #Control column); the traversal may cross
	// that many control edges.
	ControlDeps int
	// ExplainAliasing marks tasks (like nanoxml-5) that need one level
	// of aliasing expansion before the desired statements are reachable.
	ExplainAliasing bool
}

// Measure runs the BFS metric for a task under a given slicer. Both
// slicers receive the same control-dependence allowance; the thin
// slicer additionally receives the one-level aliasing expansion when
// the task calls for it (traditional slicing follows base edges
// natively).
func Measure(s *core.Slicer, g *sdg.Graph, task Task) Result {
	seeds := core.SeedsAt(g, task.SeedFile, task.SeedLine)
	desired := make(map[Line]bool, len(task.Desired))
	for _, l := range task.Desired {
		desired[l] = true
	}
	budget := Budget{ControlHops: task.ControlDeps}
	if task.ExplainAliasing && s.Opts.Mode == core.Thin {
		budget.BaseHops = 1
	}
	return BFSBudget(s, seeds, desired, budget)
}

// MeasureSession runs the BFS metric for a task over an analysis
// session: the dependence graph is fetched from the session's store
// (built at most once, no matter how many tasks are measured) and the
// slicer is derived per the requested options.
func MeasureSession(sess *anasession.Session, opts core.Options, task Task) (Result, error) {
	g, err := sess.Graph()
	if err != nil {
		return Result{}, err
	}
	var s *core.Slicer
	if opts.Mode == core.Thin {
		s = core.NewThin(g)
	} else {
		s = core.NewTraditional(g, opts.FollowControl)
	}
	s.WithBudget(sess.Budget())
	return Measure(s, g, task), nil
}
