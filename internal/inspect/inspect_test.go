package inspect_test

import (
	"testing"

	"thinslice/internal/analyzer"
	"thinslice/internal/core"
	"thinslice/internal/inspect"
	"thinslice/internal/papercases"
)

func analyzeCase(t *testing.T, file, src string) *analyzer.Analysis {
	t.Helper()
	a, err := analyzer.Analyze(map[string]string{file: src})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

func TestSeedIsDesired(t *testing.T) {
	src := `class Main {
    static void main() {
        print(1); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	line := papercases.Line(src, "SEED")
	task := inspect.Task{SeedFile: "t.mj", SeedLine: line,
		Desired: []inspect.Line{{File: "t.mj", Line: line}}}
	res := inspect.Measure(a.ThinSlicer(), a.Graph, task)
	if !res.Found || res.Inspected != 1 {
		t.Fatalf("seed==desired should cost 1, got %+v", res)
	}
}

func TestControlHopReachesGuard(t *testing.T) {
	src := `class Main {
    static void main() {
        int k = inputInt();
        if (k == 2) { // GUARD (the bug)
            assert(inputInt() >= 0); // SEED
        }
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	task := inspect.Task{SeedFile: "t.mj", SeedLine: papercases.Line(src, "SEED"),
		Desired:     []inspect.Line{{File: "t.mj", Line: papercases.Line(src, "GUARD")}},
		ControlDeps: 1}
	thin := inspect.Measure(a.ThinSlicer(), a.Graph, task)
	trad := inspect.Measure(a.TraditionalSlicer(false), a.Graph, task)
	if !thin.Found || !trad.Found {
		t.Fatalf("guard must be reachable via the control allowance: thin=%+v trad=%+v", thin, trad)
	}
	if thin.Inspected != 2 {
		t.Errorf("thin should inspect seed + guard = 2, got %d (%v)", thin.Inspected, thin.Order)
	}
	if trad.Inspected < thin.Inspected {
		t.Errorf("traditional (%d) should not beat thin (%d)", trad.Inspected, thin.Inspected)
	}
	// Without the allowance the guard is unreachable for thin slicing.
	task.ControlDeps = 0
	if res := inspect.Measure(a.ThinSlicer(), a.Graph, task); res.Found {
		t.Error("guard should be unreachable without control hops")
	}
}

func TestThinFindsBugWithFewerInspections(t *testing.T) {
	src := papercases.FirstNames
	file := papercases.FirstNamesFile
	a := analyzeCase(t, file, src)
	task := inspect.Task{
		SeedFile: file,
		SeedLine: papercases.Line(src, "SEED"),
		Desired:  []inspect.Line{{File: file, Line: papercases.Line(src, "BUG")}},
	}
	thin := inspect.Measure(a.ThinSlicer(), a.Graph, task)
	trad := inspect.Measure(a.TraditionalSlicer(false), a.Graph, task)
	if !thin.Found {
		t.Fatal("thin inspection did not find the bug")
	}
	if !trad.Found {
		t.Fatal("traditional inspection did not find the bug")
	}
	if thin.Inspected >= trad.Inspected {
		t.Errorf("thin should need fewer inspections: thin=%d trad=%d",
			thin.Inspected, trad.Inspected)
	}
}

func TestBFSVisitsNearSeedFirst(t *testing.T) {
	src := `class Main {
    static void main() {
        int deep = inputInt(); // DEEP
        int mid = deep + 1; // MID
        int near = mid + 1; // NEAR
        print(near); // SEED
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	seedLine := papercases.Line(src, "SEED")
	seeds := a.SeedsAt("t.mj", seedLine)
	desired := map[inspect.Line]bool{{File: "t.mj", Line: papercases.Line(src, "DEEP")}: true}
	res := inspect.BFS(a.ThinSlicer(), seeds, desired)
	if !res.Found {
		t.Fatal("not found")
	}
	// Order must be seed, near, mid, deep (monotone BFS distance).
	wantOrder := []int{seedLine,
		papercases.Line(src, "NEAR"),
		papercases.Line(src, "MID"),
		papercases.Line(src, "DEEP")}
	if len(res.Order) != len(wantOrder) {
		t.Fatalf("visited %d lines, want %d: %v", len(res.Order), len(wantOrder), res.Order)
	}
	for i, l := range res.Order {
		if l.Line != wantOrder[i] {
			t.Fatalf("order[%d]=%d, want %d", i, l.Line, wantOrder[i])
		}
	}
}

func TestNotFoundReportsTotal(t *testing.T) {
	src := `class Main {
    static void main() {
        int unrelated = inputInt(); // UNRELATED
        print(1); // SEED
        print(unrelated);
    }
}
`
	a := analyzeCase(t, "t.mj", src)
	seeds := a.SeedsAt("t.mj", papercases.Line(src, "SEED"))
	desired := map[inspect.Line]bool{{File: "t.mj", Line: papercases.Line(src, "UNRELATED")}: true}
	res := inspect.BFS(a.ThinSlicer(), seeds, desired)
	if res.Found {
		t.Fatal("const print should not reach the unrelated input")
	}
	if res.Inspected == 0 {
		t.Error("inspected count should reflect visited statements")
	}
}

func TestExpandedBFSCrossesOneBaseHop(t *testing.T) {
	// The desired statement is only reachable through one base-pointer
	// edge (an aliasing explanation), mirroring nanoxml-5.
	src := papercases.FileBug
	file := papercases.FileBugFile
	a := analyzeCase(t, file, src)
	seeds := a.SeedsAt(file, papercases.Line(src, "CHECK"))
	desired := map[inspect.Line]bool{{File: file, Line: papercases.Line(src, "ADD")}: true}
	plain := inspect.BFS(a.ThinSlicer(), seeds, desired)
	if plain.Found {
		t.Fatal("plain thin BFS should not reach the add call")
	}
	expanded := inspect.BFSBudget(a.ThinSlicer(), seeds, desired, inspect.Budget{BaseHops: 1})
	if !expanded.Found {
		t.Fatal("one base hop should reach the add call")
	}
	trad := inspect.BFS(a.TraditionalSlicer(false), seeds, desired)
	if !trad.Found {
		t.Fatal("traditional BFS should reach the add call")
	}
	if expanded.Inspected > trad.Inspected {
		t.Errorf("expanded thin (%d) should not cost more than traditional (%d)",
			expanded.Inspected, trad.Inspected)
	}
}

func TestMeasureUsesExpansionOnlyForThin(t *testing.T) {
	src := papercases.FileBug
	file := papercases.FileBugFile
	a := analyzeCase(t, file, src)
	task := inspect.Task{
		SeedFile:        file,
		SeedLine:        papercases.Line(src, "CHECK"),
		Desired:         []inspect.Line{{File: file, Line: papercases.Line(src, "ADD")}},
		ExplainAliasing: true,
	}
	thin := inspect.Measure(a.ThinSlicer(), a.Graph, task)
	if !thin.Found {
		t.Fatal("thin with aliasing expansion should find the add")
	}
	if s := a.TraditionalSlicer(false); s.Opts.Mode != core.Traditional {
		t.Fatal("unexpected mode")
	}
}

func TestMultipleDesiredStatements(t *testing.T) {
	src := `class Main {
    static void main() {
        int a = inputInt(); // A
        int b = inputInt(); // B
        print(a + b); // SEED
    }
}
`
	an := analyzeCase(t, "t.mj", src)
	task := inspect.Task{
		SeedFile: "t.mj",
		SeedLine: papercases.Line(src, "SEED"),
		Desired: []inspect.Line{
			{File: "t.mj", Line: papercases.Line(src, "A")},
			{File: "t.mj", Line: papercases.Line(src, "B")},
		},
	}
	res := inspect.Measure(an.ThinSlicer(), an.Graph, task)
	if !res.Found || res.Inspected != 3 {
		t.Fatalf("want 3 inspections (seed, A, B), got %+v", res)
	}
}
