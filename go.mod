module thinslice

go 1.22
