// Dynamic thin slicing: the extension the paper sketches in §1
// ("dynamic thin slices can be defined in a straightforward manner
// using dynamic data dependences"). We execute the Figure 1 program on
// the failing input, record dynamic data dependences, and compare the
// dynamic thin slice of the buggy print against the static one.
//
//	go run ./examples/dynamicslice
package main

import (
	"fmt"
	"sort"
	"strings"

	"thinslice/internal/analyzer"
	"thinslice/internal/interp"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
)

func main() {
	src := papercases.FirstNames
	file := papercases.FirstNamesFile
	a, err := analyzer.Analyze(map[string]string{file: src})
	if err != nil {
		panic(err)
	}

	// Execute on the paper's failing input.
	m := interp.New(a.Prog)
	m.Trace = interp.NewTrace()
	m.Inputs = []string{"John Doe"}
	m.InputInts = []int64{1}
	if err := m.Run(""); err != nil {
		panic(err)
	}
	fmt.Printf("program output on input %q:\n", "John Doe")
	for _, line := range m.Output {
		fmt.Printf("  %s\n", line)
	}

	// Seed: the print statement.
	var seed ir.Instr
	for _, s := range a.SeedsAt(file, papercases.Line(src, "SEED")) {
		if _, ok := s.(*ir.Print); ok {
			seed = s
		}
	}

	dyn := m.Trace.DynamicThinSlice(seed)
	static := a.ThinSlicer().Slice(seed)

	lines := strings.Split(src, "\n")
	show := func(title string, has func(int) bool) {
		fmt.Printf("\n%s\n", title)
		var ls []int
		seen := map[int]bool{}
		for l := 1; l <= len(lines); l++ {
			if has(l) && !seen[l] {
				seen[l] = true
				ls = append(ls, l)
			}
		}
		sort.Ints(ls)
		for _, l := range ls {
			fmt.Printf("  %4d  %s\n", l, strings.TrimSpace(lines[l-1]))
		}
	}
	show("DYNAMIC thin slice (this execution's data dependences):", func(l int) bool {
		for ins := range dyn {
			p := ins.Pos()
			if p.File == file && p.Line == l {
				return true
			}
		}
		return false
	})
	show("STATIC thin slice (all executions):", func(l int) bool {
		return static.ContainsLine(file, l)
	})

	// The containment the test suite property-checks on random programs.
	subset := true
	for ins := range dyn {
		if !static.Contains(ins) {
			subset = false
		}
	}
	fmt.Printf("\ndynamic ⊆ static: %t — the executed producer chain is a\n", subset)
	fmt.Println("refinement of the static thin slice, pointing at the same bug.")
}
