// Tough-cast walkthrough: the paper's Figure 5 (§6.3). A downcast
// guarded by an opcode test cannot be verified by pointer analysis;
// thin slicing the opcode read reveals the constructor invariant that
// makes it safe.
//
//	go run ./examples/toughcast
package main

import (
	"fmt"
	"strings"

	"thinslice/internal/analyzer"
	"thinslice/internal/core/expand"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
)

func main() {
	src := papercases.ToughCast
	file := papercases.ToughCastFile
	a, err := analyzer.Analyze(map[string]string{file: src})
	if err != nil {
		panic(err)
	}
	lines := strings.Split(src, "\n")
	at := func(line int) string { return strings.TrimSpace(lines[line-1]) }

	// Step 1: find every tough cast (unverifiable by the pointer
	// analysis with a non-empty points-to set).
	fmt.Println("step 1 — tough casts found by the pointer analysis:")
	var tough []*ir.Cast
	for _, m := range a.Pts.ReachableMethods() {
		m.Instrs(func(ins ir.Instr) {
			c, ok := ins.(*ir.Cast)
			if !ok {
				return
			}
			verified, nonEmpty := a.Pts.CastCheckable(c)
			if !verified && nonEmpty {
				tough = append(tough, c)
				fmt.Printf("  %s:%d  %s\n", c.Pos().File, c.Pos().Line, at(c.Pos().Line))
			}
		})
	}
	if len(tough) == 0 {
		panic("expected a tough cast")
	}

	// Step 2: the cast is control dependent on the opcode guard.
	cast := tough[0]
	fmt.Println("\nstep 2 — control explanation of the cast (§4.2):")
	var guard ir.Instr
	for _, g := range expand.ControlExplanation(a.Graph, cast) {
		fmt.Printf("  guarded by %s:%d  %s\n", g.Pos().File, g.Pos().Line, at(g.Pos().Line))
		guard = g
	}

	// Step 3: thin slice from the guard shows what values op can take
	// for each subclass — the undocumented invariant.
	fmt.Println("\nstep 3 — thin slice of the opcode read:")
	sl := a.ThinSlicer().Slice(a.SeedsAt(file, guard.Pos().Line)...)
	for _, p := range sl.Lines() {
		if p.File == file {
			fmt.Printf("  %4d  %s\n", p.Line, at(p.Line))
		}
	}
	fmt.Println("  → AddNode writes opcode 1, SubNode writes 2; only AddNode")
	fmt.Println("    reaches the cast under op == 1, so the cast cannot fail.")
}
