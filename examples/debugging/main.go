// Debugging walkthrough: the paper's Figure 4 session. A File stored
// in a Vector is retrieved twice; one alias closes it, the other hits
// a ClosedException. The session combines a thin slice, a control
// explanation (§4.2), and an aliasing explanation (§4.1).
//
//	go run ./examples/debugging
package main

import (
	"fmt"
	"strings"

	"thinslice/internal/analyzer"
	"thinslice/internal/core/expand"
	"thinslice/internal/ir"
	"thinslice/internal/papercases"
)

func main() {
	src := papercases.FileBug
	file := papercases.FileBugFile
	a, err := analyzer.Analyze(map[string]string{file: src})
	if err != nil {
		panic(err)
	}
	lines := strings.Split(src, "\n")
	at := func(line int) string { return strings.TrimSpace(lines[line-1]) }

	// Step 1: the failure is the throw. No value flows into it, so ask
	// for its control explanation.
	throwLine := papercases.Line(src, "THROW")
	fmt.Printf("failure: %s:%d  %s\n\n", file, throwLine, at(throwLine))
	var throwIns ir.Instr
	for _, s := range a.SeedsAt(file, throwLine) {
		if _, ok := s.(*ir.Throw); ok {
			throwIns = s
		}
	}
	fmt.Println("step 1 — control explanation of the throw (§4.2):")
	for _, src := range expand.ControlExplanation(a.Graph, throwIns) {
		fmt.Printf("  guarded by %s:%d  %s\n", src.Pos().File, src.Pos().Line, at(src.Pos().Line))
	}

	// Step 2: thin slice from the guard's value.
	checkLine := papercases.Line(src, "CHECK")
	thin := a.ThinSlicer()
	sl := thin.Slice(a.SeedsAt(file, checkLine)...)
	fmt.Printf("\nstep 2 — thin slice of the open-flag check (line %d):\n", checkLine)
	for _, p := range sl.Lines() {
		if p.File == file {
			fmt.Printf("  %4d  %s\n", p.Line, at(p.Line))
		}
	}
	fmt.Println("  → the flag is set true in the constructor and false in close().")

	// Step 3: which File reaches close()? Explain the aliasing between
	// the read in isOpen() and the store in close().
	fmt.Println("\nstep 3 — aliasing explanation for the heap edge (§4.1):")
	for _, pair := range expand.HeapPairs(a.Graph, sl) {
		store := a.Graph.InstrOf(pair.Store)
		if _, ok := store.(*ir.SetField); !ok {
			continue
		}
		if store.Pos().Line != papercases.Line(src, "CLOSE") {
			continue
		}
		exp := expand.ExplainAliasing(a.Graph, pair)
		fmt.Printf("  %d common object(s) flow to both base pointers:\n", len(exp.Common))
		seen := map[int]bool{}
		for _, ins := range exp.Statements() {
			p := ins.Pos()
			if p.File == file && !seen[p.Line] {
				seen[p.Line] = true
				fmt.Printf("  %4d  %s\n", p.Line, at(p.Line))
			}
		}
		break
	}
	fmt.Println("  → the File is added to the Vector once and retrieved twice;")
	fmt.Println("    the first retrieval closes it. Note the Vector allocation")
	fmt.Println("    itself is filtered out, exactly as in the paper.")
}
