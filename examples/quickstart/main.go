// Quickstart: analyze the paper's Figure 1 program (first names stored
// in a Vector behind session state) and compare the thin slice with
// the traditional slice from the buggy print.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"strings"

	"thinslice/internal/analyzer"
	"thinslice/internal/core"
	"thinslice/internal/papercases"
)

func main() {
	src := papercases.FirstNames
	a, err := analyzer.Analyze(map[string]string{papercases.FirstNamesFile: src})
	if err != nil {
		panic(err)
	}

	seedLine := papercases.Line(src, "SEED")
	seeds := a.SeedsAt(papercases.FirstNamesFile, seedLine)
	fmt.Printf("seed: %s:%d (the print of a mangled first name)\n\n",
		papercases.FirstNamesFile, seedLine)

	thin := a.ThinSlicer().Slice(seeds...)
	trad := a.TraditionalSlicer(true).Slice(seeds...)

	show("THIN SLICE (producer statements only, paper §2)", src, thin)
	fmt.Printf("\nTRADITIONAL SLICE: %d statements on %d lines — nearly the whole program,\n",
		trad.Size(), len(trad.Lines()))
	fmt.Printf("including the Vector construction and all SessionState plumbing.\n\n")

	bugLine := papercases.Line(src, "BUG")
	fmt.Printf("the off-by-one substring at line %d is in the thin slice: %t\n",
		bugLine, thin.ContainsLine(papercases.FirstNamesFile, bugLine))
	fmt.Printf("thin/traditional line counts: %d vs %d\n",
		len(thin.Lines()), len(trad.Lines()))
}

func show(title, src string, sl *core.Slice) {
	fmt.Println(title)
	lines := strings.Split(src, "\n")
	for _, p := range sl.Lines() {
		if p.File != papercases.FirstNamesFile {
			fmt.Printf("  %s:%d  (container library)\n", p.File, p.Line)
			continue
		}
		fmt.Printf("  %4d  %s\n", p.Line, strings.TrimSpace(lines[p.Line-1]))
	}
}
