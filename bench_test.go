// Package thinslice_test is the benchmark harness regenerating the
// paper's evaluation (DESIGN.md §4): one testing.B benchmark per table
// or figure-level claim, plus ablation benches for the design choices
// DESIGN.md calls out. Counts that the paper reports as table cells
// are exposed via b.ReportMetric, so `go test -bench . -benchmem`
// prints the same quantities alongside the timings.
package thinslice_test

import (
	"fmt"
	"testing"

	"thinslice/internal/analysis/modref"
	"thinslice/internal/analysis/pointsto"
	"thinslice/internal/analyzer"
	"thinslice/internal/bench"
	"thinslice/internal/core"
	"thinslice/internal/core/expand"
	"thinslice/internal/csslice"
	"thinslice/internal/experiments"
	"thinslice/internal/inspect"
	"thinslice/internal/ir"
	"thinslice/internal/lang/prelude"
	"thinslice/internal/sdg"
)

// --- Table 1: benchmark characteristics ---

// BenchmarkTable1_Characteristics measures the full analysis pipeline
// per benchmark and reports the Table 1 quantities as metrics.
func BenchmarkTable1_Characteristics(b *testing.B) {
	for _, name := range bench.AllNames {
		b.Run(name, func(b *testing.B) {
			bm := bench.Generate(name, 1)
			var a *analyzer.Analysis
			for i := 0; i < b.N; i++ {
				var err error
				a, err = analyzer.Analyze(bm.Sources)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(a.Pts.ReachableMethods())), "methods")
			b.ReportMetric(float64(a.Pts.NumCGNodes()), "cg-nodes")
			b.ReportMetric(float64(a.Graph.NumNodes()), "sdg-stmts")
			b.ReportMetric(float64(a.Graph.NumEdges()), "sdg-edges")
		})
	}
}

// --- Table 2: locating bugs ---

// BenchmarkTable2_Debugging runs the full debugging experiment and
// reports the aggregate inspected-statement totals (the paper's 3.3×
// headline is trad/thin).
func BenchmarkTable2_Debugging(b *testing.B) {
	var sum experiments.Summary
	for i := 0; i < b.N; i++ {
		var err error
		_, sum, err = experiments.Table2(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sum.ThinTotal), "thin-total")
	b.ReportMetric(float64(sum.TradTotal), "trad-total")
	b.ReportMetric(sum.Ratio, "trad/thin")
}

// --- Table 3: understanding tough casts ---

// BenchmarkTable3_ToughCasts runs the tough-casts experiment (the
// paper's 9.4× headline is trad/thin).
func BenchmarkTable3_ToughCasts(b *testing.B) {
	var sum experiments.Summary
	for i := 0; i < b.N; i++ {
		var err error
		_, sum, err = experiments.Table3(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sum.ThinTotal), "thin-total")
	b.ReportMetric(float64(sum.TradTotal), "trad-total")
	b.ReportMetric(sum.Ratio, "trad/thin")
}

// --- §6.1 scalability: per-stage costs ---

func analyzed(b *testing.B, name string, objSens bool) *analyzer.Analysis {
	b.Helper()
	bm := bench.Generate(name, 1)
	opts := []analyzer.Option{}
	if !objSens {
		opts = append(opts, analyzer.WithObjSens(false))
	}
	a, err := analyzer.Analyze(bm.Sources, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkScalability_PointerAnalysis isolates the pointer analysis,
// the dominant cost per the paper ("the cost of computing thin slices
// [is] insignificant compared to the pre-requisite call graph
// construction and pointer analysis").
func BenchmarkScalability_PointerAnalysis(b *testing.B) {
	for _, name := range bench.AllNames {
		b.Run(name, func(b *testing.B) {
			a := analyzed(b, name, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pointsto.Analyze(a.Prog, pointsto.Config{
					ObjSensContainers: true,
					ContainerClasses:  prelude.ContainerClasses,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalability_CIBuild times the §5.2 graph construction.
func BenchmarkScalability_CIBuild(b *testing.B) {
	for _, name := range bench.AllNames {
		b.Run(name, func(b *testing.B) {
			a := analyzed(b, name, true)
			b.ResetTimer()
			var g *sdg.Graph
			for i := 0; i < b.N; i++ {
				g = sdg.Build(a.Prog, a.Pts)
			}
			b.ReportMetric(float64(g.NumNodes()), "nodes")
		})
	}
}

// BenchmarkScalability_CSBuild times the §5.3 heap-parameter SDG; its
// node metric against CIBuild's is the paper's blowup observation.
func BenchmarkScalability_CSBuild(b *testing.B) {
	for _, name := range bench.AllNames {
		b.Run(name, func(b *testing.B) {
			a := analyzed(b, name, true)
			mr := modref.Compute(a.Prog, a.Pts)
			b.ResetTimer()
			var g *csslice.Graph
			for i := 0; i < b.N; i++ {
				g = csslice.Build(a.Prog, a.Pts, mr)
			}
			b.ReportMetric(float64(g.NumNodes()), "nodes")
			b.ReportMetric(float64(g.NumHeapParamNodes()), "heap-params")
		})
	}
}

// BenchmarkScalability_CSGrowth shows the §5.3 explosion with program
// size: CS heap-parameter nodes grow super-linearly in the generator
// scale while CI nodes stay near-linear.
func BenchmarkScalability_CSGrowth(b *testing.B) {
	for _, scale := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("javac-scale%d", scale), func(b *testing.B) {
			bm := bench.Generate("javac", scale)
			a, err := analyzer.Analyze(bm.Sources)
			if err != nil {
				b.Fatal(err)
			}
			mr := modref.Compute(a.Prog, a.Pts)
			b.ResetTimer()
			var cs *csslice.Graph
			for i := 0; i < b.N; i++ {
				cs = csslice.Build(a.Prog, a.Pts, mr)
			}
			b.ReportMetric(float64(a.Graph.NumNodes()), "ci-nodes")
			b.ReportMetric(float64(cs.NumNodes()), "cs-nodes")
		})
	}
}

func seedOf(b *testing.B, a *analyzer.Analysis) ir.Instr {
	b.Helper()
	var seed ir.Instr
	for _, m := range a.Pts.Entries() {
		m.Instrs(func(ins ir.Instr) {
			if seed == nil {
				if _, ok := ins.(*ir.Print); ok {
					seed = ins
				}
			}
		})
	}
	if seed == nil {
		b.Fatal("no seed")
	}
	return seed
}

// BenchmarkThinSlice measures one thin slice per iteration ("the time
// and space to compute the thin slice ... was insignificant").
func BenchmarkThinSlice(b *testing.B) {
	for _, name := range bench.AllNames {
		b.Run(name, func(b *testing.B) {
			a := analyzed(b, name, true)
			seed := seedOf(b, a)
			s := a.ThinSlicer()
			b.ResetTimer()
			var size int
			for i := 0; i < b.N; i++ {
				size = s.Slice(seed).Size()
			}
			b.ReportMetric(float64(size), "slice-stmts")
		})
	}
}

// BenchmarkTraditionalSlice is the baseline slicer's cost.
func BenchmarkTraditionalSlice(b *testing.B) {
	for _, name := range bench.AllNames {
		b.Run(name, func(b *testing.B) {
			a := analyzed(b, name, true)
			seed := seedOf(b, a)
			s := core.NewTraditional(a.Graph, true)
			b.ResetTimer()
			var size int
			for i := 0; i < b.N; i++ {
				size = s.Slice(seed).Size()
			}
			b.ReportMetric(float64(size), "slice-stmts")
		})
	}
}

// BenchmarkCSTabulation measures summary computation plus one CS thin
// slice — the §5.3 algorithm end to end.
func BenchmarkCSTabulation(b *testing.B) {
	for _, name := range []string{"nanoxml", "jtopas", "mtrt", "jack"} { // the paper's "smaller test cases"
		b.Run(name, func(b *testing.B) {
			a := analyzed(b, name, true)
			mr := modref.Compute(a.Prog, a.Pts)
			g := csslice.Build(a.Prog, a.Pts, mr)
			seed := seedOf(b, a)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := csslice.NewSlicer(g, true, false)
				s.Slice(seed)
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblation_ObjSens contrasts pointer-analysis precision: the
// thin-inspection total over the container benchmarks with and without
// object-sensitive container cloning (the Table 2/3 NoObjSens columns).
func BenchmarkAblation_ObjSens(b *testing.B) {
	for _, objSens := range []bool{true, false} {
		label := "objsens"
		if !objSens {
			label = "noobjsens"
		}
		b.Run(label, func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				total = 0
				for _, name := range []string{"nanoxml", "jack"} {
					bm := bench.Generate(name, 1)
					opts := []analyzer.Option{}
					if !objSens {
						opts = append(opts, analyzer.WithObjSens(false))
					}
					a, err := analyzer.Analyze(bm.Sources, opts...)
					if err != nil {
						b.Fatal(err)
					}
					thin := a.ThinSlicer()
					for _, task := range append(append([]inspect.Task{}, bm.Debug...), bm.Casts...) {
						total += inspect.Measure(thin, a.Graph, task).Inspected
					}
				}
			}
			b.ReportMetric(float64(total), "inspected-total")
		})
	}
}

// BenchmarkAblation_HeapParams contrasts the two heap-dependence
// representations on the same program: §5.2 direct edges vs §5.3 heap
// parameters.
func BenchmarkAblation_HeapParams(b *testing.B) {
	a := analyzed(b, "nanoxml", true)
	b.Run("direct-edges", func(b *testing.B) {
		var g *sdg.Graph
		for i := 0; i < b.N; i++ {
			g = sdg.Build(a.Prog, a.Pts)
		}
		b.ReportMetric(float64(g.NumNodes()), "nodes")
	})
	b.Run("heap-params", func(b *testing.B) {
		mr := modref.Compute(a.Prog, a.Pts)
		var g *csslice.Graph
		for i := 0; i < b.N; i++ {
			g = csslice.Build(a.Prog, a.Pts, mr)
		}
		b.ReportMetric(float64(g.NumNodes()), "nodes")
	})
}

// BenchmarkAblation_ExpandDepth measures hierarchical expansion (§4):
// rounds until the filtered expansion converges, and the growth from
// thin slice to fixpoint.
func BenchmarkAblation_ExpandDepth(b *testing.B) {
	a := analyzed(b, "nanoxml", true)
	seed := seedOf(b, a)
	b.ResetTimer()
	var rounds, start, end int
	for i := 0; i < b.N; i++ {
		e := expand.NewExpansion(a.Graph, true, seed)
		start = e.Size()
		rounds = e.Run()
		end = e.Size()
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(start), "thin-stmts")
	b.ReportMetric(float64(end), "fixpoint-stmts")
}

// BenchmarkAblation_ControlBudget shows the cost/benefit of the
// pre-identified control-dependence allowance on the inspection metric.
func BenchmarkAblation_ControlBudget(b *testing.B) {
	bm := bench.Generate("javac", 1)
	a, err := analyzer.Analyze(bm.Sources)
	if err != nil {
		b.Fatal(err)
	}
	thin := a.ThinSlicer()
	for _, hops := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("ctrl-%d", hops), func(b *testing.B) {
			task := bm.Casts[0]
			task.ControlDeps = hops
			var res inspect.Result
			for i := 0; i < b.N; i++ {
				res = inspect.Measure(thin, a.Graph, task)
			}
			found := 0.0
			if res.Found {
				found = 1
			}
			b.ReportMetric(float64(res.Inspected), "inspected")
			b.ReportMetric(found, "found")
		})
	}
}
