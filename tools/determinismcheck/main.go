package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	root := flag.String("root", ".", "module root directory to check")
	module := flag.String("module", "thinslice", "module import path prefix")
	flag.Parse()

	findings, err := Check(*root, *module)
	if err != nil {
		fmt.Fprintf(os.Stderr, "determinismcheck: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "determinismcheck: %d map-range statement(s) reachable from deterministic encoders\n", len(findings))
		os.Exit(1)
	}
}
