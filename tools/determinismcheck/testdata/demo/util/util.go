// Package util exists so the demo module has a cross-package import
// edge for the source importer to resolve.
package util

// Fudge returns a constant; it keeps util imported from codec.
func Fudge() int { return 1 }
