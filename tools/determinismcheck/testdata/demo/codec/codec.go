// Package codec is a miniature mirror of the repo's encoder layout,
// seeded with one determinism violation, one suppressed range, and one
// interface-dispatched violation, for the determinismcheck test.
package codec

import (
	"fmt"
	"sort"

	"demo/util"
)

// Table is the shape every encoder here serializes.
type Table struct {
	Rows map[string]int
}

// EncodeTable is a seed: its helper ranges a map without sorting.
func EncodeTable(t *Table) string {
	return dumpRows(t.Rows)
}

// dumpRows is only reachable from EncodeTable; its bare map range is
// the violation the test expects at this line + 2.
func dumpRows(rows map[string]int) string {
	out := ""
	for k, v := range rows {
		out += fmt.Sprintf("%s=%d;", k, v)
	}
	return out
}

// EncodeSorted is a seed whose map range is annotated as safe: the
// keys are collected and sorted before any output depends on them.
func EncodeSorted(t *Table) string {
	var keys []string
	for k := range t.Rows { //determinism:ok — sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d;", k, t.Rows[k])
	}
	return out
}

// Emitter is dispatched dynamically from a seed; reachability must
// follow the interface call to every same-named concrete method.
type Emitter interface {
	Emit(rows map[string]int) string
}

// EncodeVia is a seed that only reaches its violation through an
// interface method call.
func EncodeVia(e Emitter, t *Table) string {
	return e.Emit(t.Rows)
}

// LoudEmitter's Emit carries the dynamically reached violation.
type LoudEmitter struct{}

func (LoudEmitter) Emit(rows map[string]int) string {
	out := ""
	for k := range rows {
		out += k
	}
	return out
}

// Summarize is NOT a seed and is called by no seed; its map range
// must stay unflagged.
func Summarize(rows map[string]int) int {
	n := 0
	for range rows {
		n++
	}
	return n + util.Fudge()
}
