module demo

go 1.22
