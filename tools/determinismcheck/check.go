// Package main implements determinismcheck, a repo-specific lint: no
// function reachable from a determinism-critical entry point — the
// Fingerprint/Encode* codec family and the ir.Sprint/Fprint printers —
// may iterate a map with a bare range statement. Map iteration order
// is randomized per run, so a single stray `for k := range m` in an
// encoder turns byte-identical artifacts, golden files, and the
// content-addressed cache keys built from them into flaky tests and
// cache misses.
//
// Benign patterns (collect keys, sort, then emit) still trip the
// syntactic check; annotate the range statement — same line or the
// line above — with `//determinism:ok` after confirming the iteration
// order cannot reach the output.
//
// The checker is stdlib-only by design (go/parser + go/types, no
// x/tools): repo packages are type-checked from source via a custom
// importer, while non-repo imports resolve to empty stub packages.
// Types flowing out of stdlib calls are therefore unresolved, which is
// fine for this check — map types constructed in this repo, the only
// ones an encoder can range over, resolve fully.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one flagged map-range statement.
type Finding struct {
	Pos  token.Position
	Func string // fully qualified enclosing function
	Seed string // the determinism-critical root that reaches it
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: range over map in %s (reachable from %s)", f.Pos, f.Func, f.Seed)
}

// seedFunc reports whether name is a determinism-critical entry point.
// Besides the codec/printer family, the incremental delta entry
// points are seeds: their outputs are contractually byte-identical to
// the full builds they replace (depgraph unit keys and diffs,
// batch-ordered re-lowering, delta points-to solves, delta SDG
// splicing), so a map-order dependence anywhere beneath them breaks
// the equivalence oracle, not just a log line.
func seedFunc(name string) bool {
	return name == "Fingerprint" || name == "Sprint" || name == "Fprint" ||
		strings.HasPrefix(name, "Encode") ||
		name == "Diff" || name == "TopoBatches" ||
		name == "LowerBatches" || name == "SolveDelta" || name == "BuildDelta"
}

// checker loads and type-checks every package of one module from
// source.
type checker struct {
	fset   *token.FileSet
	root   string // module root directory
	module string // module import path prefix
	pkgs   map[string]*types.Package
	files  map[string][]*ast.File // import path → parsed files
	info   *types.Info            // shared across packages; maps accumulate
}

// Import implements types.Importer: module-local packages are
// type-checked recursively from source; everything else (stdlib,
// which this repo's constraints forbid depending past) becomes an
// empty stub so the check needs no compiled export data.
func (c *checker) Import(path string) (*types.Package, error) {
	if path == c.module || strings.HasPrefix(path, c.module+"/") {
		return c.load(path)
	}
	if pkg, ok := c.pkgs[path]; ok {
		return pkg, nil
	}
	name := path[strings.LastIndex(path, "/")+1:]
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	c.pkgs[path] = pkg
	return pkg, nil
}

// load parses and type-checks one module-local package.
func (c *checker) load(path string) (*types.Package, error) {
	if pkg, ok := c.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(c.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, c.module), "/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(c.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{
		Importer:    c,
		FakeImportC: true,
		// Stub imports make every use of a non-repo symbol a type
		// error; collect and discard so checking continues with the
		// repo-local types this lint actually needs.
		Error: func(error) {},
	}
	pkg, _ := conf.Check(path, c.fset, files, c.info)
	c.pkgs[path] = pkg
	c.files[path] = files
	return pkg, nil
}

// packageDirs returns the import paths of every package under root,
// skipping testdata, hidden directories, and dirs without Go files.
func (c *checker) packageDirs() ([]string, error) {
	var out []string
	err := filepath.WalkDir(c.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != c.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(c.root, filepath.Dir(p))
		if err != nil {
			return err
		}
		path := c.module
		if rel != "." {
			path = c.module + "/" + filepath.ToSlash(rel)
		}
		for _, seen := range out {
			if seen == path {
				return nil
			}
		}
		out = append(out, path)
		return nil
	})
	sort.Strings(out)
	return out, err
}

// funcInfo pairs a function's type object with its syntax.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
}

// Check runs the lint over the module rooted at root and returns the
// findings, deterministically ordered by position.
func Check(root, module string) ([]Finding, error) {
	c := &checker{
		fset:   token.NewFileSet(),
		root:   root,
		module: module,
		pkgs:   make(map[string]*types.Package),
		files:  make(map[string][]*ast.File),
		info: &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Uses:  make(map[*ast.Ident]types.Object),
			Defs:  make(map[*ast.Ident]types.Object),
		},
	}
	paths, err := c.packageDirs()
	if err != nil {
		return nil, err
	}
	for _, path := range paths {
		if _, err := c.load(path); err != nil {
			return nil, fmt.Errorf("load %s: %v", path, err)
		}
	}

	// Index every function declaration with a body, and every method
	// name (the interface-dispatch fallback below resolves dynamic
	// calls by name, over-approximating reachability).
	funcs := make(map[*types.Func]funcInfo)
	byName := make(map[string][]*types.Func)
	for _, path := range paths {
		for _, f := range c.files[path] {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := c.info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				funcs[obj] = funcInfo{obj: obj, decl: fd}
				if fd.Recv != nil {
					byName[fd.Name.Name] = append(byName[fd.Name.Name], obj)
				}
			}
		}
	}

	// Breadth-first reachability from the seed functions. Static calls
	// follow the resolved callee; calls to bodyless functions (interface
	// methods) fall back to every same-named method in the repo.
	seedOf := make(map[*types.Func]string)
	var queue []*types.Func
	enqueue := func(fn *types.Func, seed string) {
		if _, ok := seedOf[fn]; ok {
			return
		}
		if _, ok := funcs[fn]; !ok {
			return
		}
		seedOf[fn] = seed
		queue = append(queue, fn)
	}
	var seedNames []*types.Func
	for fn := range funcs {
		if seedFunc(fn.Name()) {
			seedNames = append(seedNames, fn)
		}
	}
	sort.Slice(seedNames, func(i, j int) bool { return seedNames[i].FullName() < seedNames[j].FullName() })
	for _, fn := range seedNames {
		enqueue(fn, fn.FullName())
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		seed := seedOf[fn]
		ast.Inspect(funcs[fn].decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch e := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				return true
			}
			callee, _ := c.info.Uses[id].(*types.Func)
			if callee == nil {
				return true
			}
			if _, hasBody := funcs[callee]; hasBody {
				enqueue(callee, seed)
			} else if callee.Pkg() != nil && strings.HasPrefix(callee.Pkg().Path(), module) {
				// A repo-local function without a body is an interface
				// method: any same-named concrete method may run.
				for _, impl := range byName[callee.Name()] {
					enqueue(impl, seed)
				}
			}
			return true
		})
	}

	// Suppression comments: determinism:ok on the range line or the
	// line above.
	suppressed := make(map[string]map[int]bool)
	for _, path := range paths {
		for _, f := range c.files[path] {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					if strings.Contains(cm.Text, "determinism:ok") {
						pos := c.fset.Position(cm.Pos())
						if suppressed[pos.Filename] == nil {
							suppressed[pos.Filename] = make(map[int]bool)
						}
						suppressed[pos.Filename][pos.Line] = true
					}
				}
			}
		}
	}

	var findings []Finding
	for fn, seed := range seedOf {
		fi := funcs[fn]
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := c.info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pos := c.fset.Position(rs.Pos())
			if lines := suppressed[pos.Filename]; lines != nil && (lines[pos.Line] || lines[pos.Line-1]) {
				return true
			}
			findings = append(findings, Finding{Pos: pos, Func: fn.FullName(), Seed: seed})
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return findings, nil
}
