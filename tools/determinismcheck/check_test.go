package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckDemoModule pins the lint's semantics on a seeded fixture
// module: the statically reached violation and the interface-dispatched
// one are flagged, the annotated sort-then-emit range and the
// unreachable range are not.
func TestCheckDemoModule(t *testing.T) {
	findings, err := Check(filepath.Join("testdata", "demo"), "demo")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Log(f)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2", len(findings))
	}
	static, dyn := findings[0], findings[1]
	if static.Pos.Line != 27 || !strings.HasSuffix(static.Func, "dumpRows") || !strings.HasSuffix(static.Seed, "EncodeTable") {
		t.Errorf("static finding = %v, want dumpRows:27 via EncodeTable", static)
	}
	if dyn.Pos.Line != 65 || !strings.Contains(dyn.Func, "Emit") || !strings.HasSuffix(dyn.Seed, "EncodeVia") {
		t.Errorf("dynamic finding = %v, want LoudEmitter.Emit:65 via EncodeVia", dyn)
	}
	for _, f := range findings {
		if strings.Contains(f.Func, "EncodeSorted") {
			t.Errorf("suppressed range in EncodeSorted was flagged: %v", f)
		}
		if strings.Contains(f.Func, "Summarize") {
			t.Errorf("unreachable range in Summarize was flagged: %v", f)
		}
	}
}

// TestCheckRepoClean runs the lint over this repository itself: every
// map range reachable from a Fingerprint/Encode*/Sprint entry point
// must be either eliminated or explicitly annotated.
func TestCheckRepoClean(t *testing.T) {
	findings, err := Check(filepath.Join("..", ".."), "thinslice")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unannotated map range in encoder path: %v", f)
	}
}
