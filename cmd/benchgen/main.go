// Command benchgen emits the generated benchmark programs, for
// inspection or for slicing with cmd/thinslice:
//
//	benchgen -list
//	benchgen -name javac [-scale 2] [-o javac.mj]
//	benchgen -name nanoxml -tasks
package main

import (
	"flag"
	"fmt"
	"os"

	"thinslice/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list benchmark names")
	name := flag.String("name", "", "benchmark to emit")
	scale := flag.Int("scale", 1, "generator scale")
	out := flag.String("o", "", "output file (default stdout)")
	tasks := flag.Bool("tasks", false, "print the benchmark's tasks instead of its source")
	flag.Parse()

	if *list {
		for _, n := range bench.AllNames {
			fmt.Println(n)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgen -list | -name <bench> [-scale N] [-o file] [-tasks]")
		os.Exit(2)
	}
	found := false
	for _, n := range bench.AllNames {
		if n == *name {
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "benchgen: unknown benchmark %q (try -list)\n", *name)
		os.Exit(1)
	}
	b := bench.Generate(*name, *scale)
	if *tasks {
		for _, t := range b.Debug {
			fmt.Printf("debug %-16s seed %s:%d  control=%d desired=%v\n",
				t.Name, t.SeedFile, t.SeedLine, t.ControlDeps, t.Desired)
		}
		for _, t := range b.Casts {
			fmt.Printf("cast  %-16s seed %s:%d  control=%d desired=%v\n",
				t.Name, t.SeedFile, t.SeedLine, t.ControlDeps, t.Desired)
		}
		for _, t := range b.Hopeless {
			fmt.Printf("hopeless %-13s seed %s:%d\n", t.Name, t.SeedFile, t.SeedLine)
		}
		return
	}
	if *out == "" {
		fmt.Print(b.Src())
		return
	}
	if err := os.WriteFile(*out, []byte(b.Src()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}
