package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden runs the CLI and compares its stdout against a checked-in
// golden file; -update rewrites the files. Stable output across runs
// is itself part of the contract (deterministic ordering).
func golden(t *testing.T, name string, wantCode int, args ...string) {
	t.Helper()
	t.Chdir("../..") // repo root, so file paths in output stay short
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != wantCode {
		t.Fatalf("exit code %d, want %d\nstderr: %s\nstdout: %s", code, wantCode, &stderr, &stdout)
	}
	path := filepath.Join("cmd", "thinslice", "testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("output differs from %s (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s", path, &stdout, want)
	}
}

const taintExample = "examples/checkers/taint.mj"

func TestGoldenThinSlice(t *testing.T) {
	golden(t, "thin", exitOK, "-seed", taintExample+":8", taintExample)
}

func TestGoldenTraditionalSlice(t *testing.T) {
	golden(t, "traditional", exitOK, "-mode", "traditional", "-control", "-seed", taintExample+":8", taintExample)
}

func TestGoldenBatch(t *testing.T) {
	golden(t, "batch", exitOK, "-seeds-file", "cmd/thinslice/testdata/taint.seeds", taintExample)
}

func TestGoldenBatchTraditional(t *testing.T) {
	golden(t, "batch_traditional", exitOK, "-mode", "traditional", "-control",
		"-seeds-file", "cmd/thinslice/testdata/taint.seeds", taintExample)
}

func TestGoldenWhy(t *testing.T) {
	golden(t, "why", exitOK, "-seed", taintExample+":8", "-why", taintExample+":13", taintExample)
}

// checkFixtures is every seeded-bug fixture plus the clean programs,
// in the order the goldens were generated with.
var checkFixtures = []string{
	"examples/checkers/cast.mj", "examples/checkers/clean.mj",
	"examples/checkers/close.mj", "examples/checkers/close_clean.mj",
	"examples/checkers/defuninit.mj", "examples/checkers/defuninit_clean.mj",
	"examples/checkers/nil.mj", "examples/checkers/taint.mj",
	"examples/checkers/uninit.mj",
}

func TestGoldenCheck(t *testing.T) {
	golden(t, "check", exitPartial, append([]string{"check"}, checkFixtures...)...)
}

func TestGoldenCheckJSON(t *testing.T) {
	golden(t, "check_json", exitPartial, append([]string{"check", "-json"}, checkFixtures...)...)
}

func TestGoldenCheckClean(t *testing.T) {
	golden(t, "check_clean", exitOK, "check", "examples/checkers/clean.mj",
		"examples/checkers/close_clean.mj", "examples/checkers/defuninit_clean.mj")
}

// TestDeterministicOutput runs the check subcommand repeatedly and
// demands byte-identical output.
func TestDeterministicOutput(t *testing.T) {
	t.Chdir("../..")
	args := append([]string{"check"}, checkFixtures...)
	var first []byte
	for i := 0; i < 3; i++ {
		var stdout, stderr bytes.Buffer
		run(args, &stdout, &stderr)
		if first == nil {
			first = stdout.Bytes()
		} else if !bytes.Equal(first, stdout.Bytes()) {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, first, stdout.Bytes())
		}
	}
}

// TestCheckJSONSchemaStable pins the -json wire shape: the output must
// decode into this hand-written mirror of the documented schema with
// unknown fields disallowed, so adding, renaming, or retyping a field
// fails here before it breaks downstream consumers.
func TestCheckJSONSchemaStable(t *testing.T) {
	t.Chdir("../..")
	var stdout, stderr bytes.Buffer
	if code := run(append([]string{"check", "-json"}, checkFixtures...), &stdout, &stderr); code != exitPartial {
		t.Fatalf("exit code %d, want %d (stderr: %s)", code, exitPartial, &stderr)
	}
	var rep struct {
		Findings []struct {
			Checker string `json:"checker"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Message string `json:"message"`
			Witness []struct {
				Kind string `json:"kind"`
				File string `json:"file"`
				Line int    `json:"line"`
				Stmt string `json:"stmt"`
			} `json:"witness"`
		} `json:"findings"`
		Truncated bool `json:"truncated"`
	}
	dec := json.NewDecoder(&stdout)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("output does not match the pinned schema: %v", err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings decoded; schema check is vacuous")
	}
	byChecker := make(map[string]int)
	for _, f := range rep.Findings {
		byChecker[f.Checker]++
		if f.Checker == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding with missing required fields: %+v", f)
		}
	}
	for _, c := range []string{"nilderef", "uninitfield", "unsafecast", "taint", "typestate", "defuninit"} {
		if byChecker[c] == 0 {
			t.Errorf("no %s finding in the fixture corpus; every checker must exercise the schema", c)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"no-args", nil, exitUsage},
		{"check-no-files", []string{"check"}, exitUsage},
		{"bad-seed", []string{"-seed", "nope", taintExample}, exitFailure},
		{"seeds-file-with-cs", []string{"-seeds-file", "cmd/thinslice/testdata/taint.seeds", "-cs", taintExample}, exitFailure},
		{"missing-seeds-file", []string{"-seeds-file", "no-such.seeds", taintExample}, exitFailure},
		{"bad-checker", []string{"check", "-checks", "bogus", taintExample}, exitFailure},
		{"missing-file", []string{"check", "no-such-file.mj"}, exitFailure},
	}
	t.Chdir("../..")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.code, &stderr)
			}
		})
	}
}
