package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden runs the CLI and compares its stdout against a checked-in
// golden file; -update rewrites the files. Stable output across runs
// is itself part of the contract (deterministic ordering).
func golden(t *testing.T, name string, wantCode int, args ...string) {
	t.Helper()
	t.Chdir("../..") // repo root, so file paths in output stay short
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != wantCode {
		t.Fatalf("exit code %d, want %d\nstderr: %s\nstdout: %s", code, wantCode, &stderr, &stdout)
	}
	path := filepath.Join("cmd", "thinslice", "testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("output differs from %s (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s", path, &stdout, want)
	}
}

const taintExample = "examples/checkers/taint.mj"

func TestGoldenThinSlice(t *testing.T) {
	golden(t, "thin", exitOK, "-seed", taintExample+":8", taintExample)
}

func TestGoldenTraditionalSlice(t *testing.T) {
	golden(t, "traditional", exitOK, "-mode", "traditional", "-control", "-seed", taintExample+":8", taintExample)
}

func TestGoldenBatch(t *testing.T) {
	golden(t, "batch", exitOK, "-seeds-file", "cmd/thinslice/testdata/taint.seeds", taintExample)
}

func TestGoldenBatchTraditional(t *testing.T) {
	golden(t, "batch_traditional", exitOK, "-mode", "traditional", "-control",
		"-seeds-file", "cmd/thinslice/testdata/taint.seeds", taintExample)
}

func TestGoldenWhy(t *testing.T) {
	golden(t, "why", exitOK, "-seed", taintExample+":8", "-why", taintExample+":13", taintExample)
}

func TestGoldenCheck(t *testing.T) {
	golden(t, "check", exitPartial, "check",
		"examples/checkers/cast.mj", "examples/checkers/clean.mj",
		"examples/checkers/nil.mj", "examples/checkers/taint.mj",
		"examples/checkers/uninit.mj")
}

func TestGoldenCheckJSON(t *testing.T) {
	golden(t, "check_json", exitPartial, "check", "-json",
		"examples/checkers/cast.mj", "examples/checkers/clean.mj",
		"examples/checkers/nil.mj", "examples/checkers/taint.mj",
		"examples/checkers/uninit.mj")
}

func TestGoldenCheckClean(t *testing.T) {
	golden(t, "check_clean", exitOK, "check", "examples/checkers/clean.mj")
}

// TestDeterministicOutput runs the check subcommand repeatedly and
// demands byte-identical output.
func TestDeterministicOutput(t *testing.T) {
	t.Chdir("../..")
	args := []string{"check", "examples/checkers/cast.mj", "examples/checkers/nil.mj",
		"examples/checkers/taint.mj", "examples/checkers/uninit.mj"}
	var first []byte
	for i := 0; i < 3; i++ {
		var stdout, stderr bytes.Buffer
		run(args, &stdout, &stderr)
		if first == nil {
			first = stdout.Bytes()
		} else if !bytes.Equal(first, stdout.Bytes()) {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, first, stdout.Bytes())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"no-args", nil, exitUsage},
		{"check-no-files", []string{"check"}, exitUsage},
		{"bad-seed", []string{"-seed", "nope", taintExample}, exitFailure},
		{"seeds-file-with-cs", []string{"-seeds-file", "cmd/thinslice/testdata/taint.seeds", "-cs", taintExample}, exitFailure},
		{"missing-seeds-file", []string{"-seeds-file", "no-such.seeds", taintExample}, exitFailure},
		{"bad-checker", []string{"check", "-checks", "bogus", taintExample}, exitFailure},
		{"missing-file", []string{"check", "no-such-file.mj"}, exitFailure},
	}
	t.Chdir("../..")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.code, &stderr)
			}
		})
	}
}
