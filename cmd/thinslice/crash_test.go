package main

// Crash-recovery test for the persistent artifact cache: a serving
// process is SIGKILLed mid-populate — no drain, no flush, exactly what
// a power cut or OOM kill leaves behind — and a fresh process over the
// same cache directory must answer byte-identically, serve at least
// one artifact from disk, and pass `thinslice cache fsck`.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"thinslice/internal/papercases"
)

// TestHelperServeProcess is not a test: re-executed with the marker
// env var set, it becomes the `thinslice serve` child process.
func TestHelperServeProcess(t *testing.T) {
	if os.Getenv("THINSLICE_HELPER_SERVE") != "1" {
		t.Skip("helper process for TestServeCrashRecovery")
	}
	os.Exit(run([]string{
		"serve",
		"-addr", "127.0.0.1:0",
		"-cache-dir", os.Getenv("THINSLICE_HELPER_CACHE"),
	}, os.Stdout, os.Stderr))
}

// startServe re-executes the test binary as a serving process over
// cacheDir and returns the child plus its base URL.
func startServe(t *testing.T, cacheDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperServeProcess$")
	cmd.Env = append(os.Environ(),
		"THINSLICE_HELPER_SERVE=1",
		"THINSLICE_HELPER_CACHE="+cacheDir,
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "thinslice: serving on "); ok {
				addrCh <- addr
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("serve helper never reported its address")
		return nil, ""
	}
}

func postSliceRaw(t *testing.T, base string, sources map[string]string, seed string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"sources": sources, "seed": seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(base+"/slice", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, data
}

func TestServeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery test skipped in -short mode")
	}
	cacheDir := t.TempDir()
	sources := map[string]string{papercases.FirstNamesFile: papercases.FirstNames}
	seed := fmt.Sprintf("%s:%d", papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, "// SEED"))

	// Phase 1: populate the cache, then SIGKILL while a second program
	// is mid-populate — the cache dir is left in whatever state the
	// kill happened to catch.
	cmd1, base1 := startServe(t, cacheDir)
	code, want := postSliceRaw(t, base1, sources, seed)
	if code != http.StatusOK {
		t.Fatalf("populate request: code %d body %s", code, want)
	}
	other := map[string]string{papercases.FirstNamesFile: papercases.FirstNames + "\n// crash variant\n"}
	go func() {
		// Best effort: the process dies underneath this request.
		body, _ := json.Marshal(map[string]any{"sources": other, "seed": seed})
		res, err := http.Post(base1+"/slice", "application/json", bytes.NewReader(body))
		if err == nil {
			res.Body.Close()
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the populate get underway
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait() // SIGKILL: nonzero exit is expected

	// Phase 2: a fresh process over the same cache dir must answer
	// byte-identically and hit the disk tier.
	cmd2, base2 := startServe(t, cacheDir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	code, got := postSliceRaw(t, base2, sources, seed)
	if code != http.StatusOK {
		t.Fatalf("post-crash request: code %d body %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-crash response differs:\n got: %s\nwant: %s", got, want)
	}
	res, err := http.Get(base2 + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Disk *struct {
			Hits        int64 `json:"hits"`
			Quarantines int64 `json:"quarantines"`
		} `json:"disk"`
	}
	err = json.NewDecoder(res.Body).Decode(&stats)
	res.Body.Close()
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if stats.Disk == nil || stats.Disk.Hits == 0 {
		t.Fatalf("post-crash server served without disk hits: %+v", stats.Disk)
	}

	// Phase 3: the surviving cache verifies clean — torn temp files
	// from the kill are invisible, published entries are intact.
	var out bytes.Buffer
	if code := run([]string{"cache", "fsck", "-dir", cacheDir}, &out, &out); code != exitOK {
		t.Fatalf("cache fsck exit %d:\n%s", code, &out)
	}
	if !strings.Contains(out.String(), "0 corrupt") {
		t.Fatalf("fsck reported corruption:\n%s", &out)
	}
}
