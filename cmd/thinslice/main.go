// Command thinslice slices MiniJava-style programs from a seed
// statement:
//
//	thinslice -seed prog.mj:42 prog.mj [more.mj ...]
//
// By default it prints the thin slice (producer statements, paper §2).
// Flags select the traditional baseline, control dependences, the
// context-sensitive tabulation slicer, reduced pointer-analysis
// precision, and on-demand explanations of heap aliasing and control
// dependences for the slice (§4).
//
// Resource limits: -timeout and -max-steps bound the whole run, and
// -fuel bounds -dynamic execution. A run that was cut short but still
// produced a (partial) result exits with code 3; hard failures exit 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"thinslice/internal/analysis/modref"
	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
	"thinslice/internal/core"
	"thinslice/internal/core/expand"
	"thinslice/internal/csslice"
	"thinslice/internal/interp"
	"thinslice/internal/ir"
	"thinslice/internal/lang/token"
)

// exitPartial is the exit code for a truncated-but-usable result.
const exitPartial = 3

func main() {
	seedFlag := flag.String("seed", "", "seed statement as file.mj:line (required)")
	mode := flag.String("mode", "thin", "slicing mode: thin or traditional")
	control := flag.Bool("control", false, "follow control dependences (traditional only)")
	cs := flag.Bool("cs", false, "use the context-sensitive tabulation slicer (§5.3)")
	noObjSens := flag.Bool("noobjsens", false, "disable object-sensitive container handling")
	explainAliasing := flag.Bool("explain-aliasing", false, "print aliasing explanations for heap edges in the slice (§4.1)")
	explainControl := flag.Bool("explain-control", false, "print control explanations for the seed (§4.2)")
	why := flag.String("why", "", "explain why file.mj:line is in the slice (shortest producer chain)")
	dynamic := flag.Bool("dynamic", false, "execute the program and print the dynamic thin slice of the seed")
	inputs := flag.String("input", "", "comma-separated input() values for -dynamic")
	inputInts := flag.String("inputint", "", "comma-separated inputInt() values for -dynamic")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the whole run (e.g. 2s; 0 = unlimited)")
	maxSteps := flag.Int64("max-steps", 0, "per-phase analysis step cap (0 = unlimited)")
	fuel := flag.Int("fuel", 0, "instruction fuel for -dynamic execution (0 = default 2,000,000)")
	flag.Parse()

	if *seedFlag == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: thinslice -seed file.mj:line [flags] file.mj...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	seedFile, seedLine, err := parseSeed(*seedFlag)
	exitOn(err)

	sources := make(map[string]string)
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		exitOn(err)
		sources[path] = string(data)
	}

	// One budget bounds the whole run: analysis phases and -dynamic
	// execution share the wall-clock deadline.
	var bopts []budget.Option
	if *timeout > 0 {
		bopts = append(bopts, budget.WithTimeout(*timeout))
	}
	if *maxSteps > 0 {
		bopts = append(bopts, budget.WithSteps(*maxSteps))
	}
	bud := budget.New(nil, bopts...)

	var opts []analyzer.Option
	if *noObjSens {
		opts = append(opts, analyzer.WithObjSens(false))
	}
	opts = append(opts, analyzer.WithBudget(bud))
	a, err := analyzer.Analyze(sources, opts...)
	exitOn(err)
	partial := a.Partial()
	if partial {
		fmt.Fprintln(os.Stderr, "thinslice: warning: budget exhausted during analysis; results may be incomplete")
	}

	seeds := a.SeedsAt(seedFile, seedLine)
	if len(seeds) == 0 {
		exitOn(fmt.Errorf("no reachable statements at %s:%d", seedFile, seedLine))
	}

	thinMode := *mode == "thin"
	if !thinMode && *mode != "traditional" {
		exitOn(fmt.Errorf("unknown mode %q", *mode))
	}

	if *dynamic {
		if runDynamic(a, sources, seeds, *inputs, *inputInts, bud, *fuel) || partial {
			os.Exit(exitPartial)
		}
		return
	}

	var lines []token.Pos
	if *cs {
		mr := modref.Compute(a.Prog, a.Pts)
		g := csslice.Build(a.Prog, a.Pts, mr)
		s := csslice.NewSlicer(g, thinMode, *control)
		slice := s.Slice(seeds...)
		for p := range csslice.SliceLines(slice) {
			lines = append(lines, p)
		}
		sort.Slice(lines, func(i, j int) bool { return posLess(lines[i], lines[j]) })
		fmt.Printf("%s slice (context-sensitive) of %s:%d: %d statements\n",
			*mode, seedFile, seedLine, len(slice))
	} else {
		var s *core.Slicer
		if thinMode {
			s = a.ThinSlicer()
		} else {
			s = a.TraditionalSlicer(*control)
		}
		slice := s.Slice(seeds...)
		lines = slice.Lines()
		if slice.Truncated {
			partial = true
			fmt.Fprintf(os.Stderr, "thinslice: warning: slice truncated (%v)\n", slice.Err)
		}
		fmt.Printf("%s slice of %s:%d: %d statements on %d lines\n",
			*mode, seedFile, seedLine, slice.Size(), len(lines))
		if *explainAliasing && thinMode {
			printAliasing(a, slice)
		}
	}
	printLines(sources, lines)

	if *why != "" && !*cs {
		whyFile, whyLine, err := parseSeed(*why)
		exitOn(err)
		var s *core.Slicer
		if thinMode {
			s = a.ThinSlicer()
		} else {
			s = a.TraditionalSlicer(*control)
		}
		explainWhy(a, s, sources, seeds, whyFile, whyLine)
	}

	if *explainControl {
		fmt.Println("\ncontrol explanations of the seed (paper §4.2):")
		for _, seed := range seeds {
			for _, src := range expand.ControlExplanation(a.Graph, seed) {
				fmt.Printf("  %s: %s\n", src.Pos(), src)
			}
		}
	}

	if partial {
		os.Exit(exitPartial)
	}
}

// explainWhy prints the shortest producer chain from the seed to the
// named statement.
func explainWhy(a *analyzer.Analysis, s *core.Slicer, sources map[string]string, seeds []ir.Instr, file string, line int) {
	targets := a.SeedsAt(file, line)
	if len(targets) == 0 {
		exitOn(fmt.Errorf("no statements at %s:%d", file, line))
	}
	var path []core.PathStep
	for _, target := range targets {
		if p := s.PathTo(target, seeds...); p != nil && (path == nil || len(p) < len(path)) {
			path = p
		}
	}
	if path == nil {
		fmt.Printf("\n%s:%d is NOT in the %s slice (an explainer statement; try -mode traditional,\n", file, line, s.Opts.Mode)
		fmt.Println("or ask for -explain-aliasing / -explain-control)")
		return
	}
	fmt.Printf("\nwhy %s:%d is in the slice (%d-step producer chain):\n", file, line, len(path)-1)
	for i, step := range path {
		arrow := "seed"
		if i > 0 {
			arrow = "<-" + step.Kind.String() + "-"
		}
		fmt.Printf("  %-12s %s: %s\n", arrow, step.Ins.Pos(), step.Ins)
		if step.ViaCall != nil {
			fmt.Printf("  %-12s   (passed at call %s)\n", "", step.ViaCall.Pos())
		}
	}
}

// runDynamic executes the program with scripted inputs and prints the
// dynamic thin slice (§1's dynamic-dependence extension). It reports
// whether execution was cut short by a resource bound (fuel, budget),
// in which case the printed slice covers only the executed prefix.
func runDynamic(a *analyzer.Analysis, sources map[string]string, seeds []ir.Instr, inputCSV, intCSV string, bud *budget.Budget, fuel int) bool {
	m := interp.New(a.Prog)
	m.Trace = interp.NewTrace()
	m.Budget = bud
	if fuel > 0 {
		m.StepLimit = fuel
	}
	if inputCSV != "" {
		m.Inputs = strings.Split(inputCSV, ",")
	}
	for _, s := range strings.Split(intCSV, ",") {
		if s == "" {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		exitOn(err)
		m.InputInts = append(m.InputInts, n)
	}
	runErr := m.Run("")
	for _, line := range m.Output {
		fmt.Printf("output: %s\n", line)
	}
	truncated := interp.Truncated(runErr)
	if runErr != nil {
		fmt.Printf("execution ended with: %v\n", runErr)
		if truncated {
			fmt.Println("(execution truncated; the dynamic slice covers the executed prefix)")
		}
	}
	members := make(map[ir.Instr]bool)
	for _, seed := range seeds {
		for ins := range m.Trace.DynamicThinSlice(seed) {
			members[ins] = true
		}
	}
	if len(members) == 0 {
		fmt.Println("seed statement was not executed on this input")
		return truncated
	}
	var lines []token.Pos
	seen := make(map[token.Pos]bool)
	for ins := range members {
		p := ins.Pos()
		p.Col = 0
		if p.IsValid() && !seen[p] {
			seen[p] = true
			lines = append(lines, p)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return posLess(lines[i], lines[j]) })
	fmt.Printf("dynamic thin slice: %d statements on %d lines\n", len(members), len(lines))
	printLines(sources, lines)
	return truncated
}

func printAliasing(a *analyzer.Analysis, slice *core.Slice) {
	pairs := expand.HeapPairs(a.Graph, slice)
	if len(pairs) == 0 {
		return
	}
	fmt.Printf("\naliasing explanations (paper §4.1), %d heap edge(s):\n", len(pairs))
	for i, pair := range pairs {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(pairs)-i)
			break
		}
		exp := expand.ExplainAliasing(a.Graph, pair)
		load := a.Graph.InstrOf(pair.Load)
		store := a.Graph.InstrOf(pair.Store)
		fmt.Printf("  load %s <- store %s: %d common object(s)\n",
			load.Pos(), store.Pos(), len(exp.Common))
		for _, ins := range exp.Statements() {
			fmt.Printf("    %s: %s\n", ins.Pos(), ins)
		}
	}
}

func printLines(sources map[string]string, lines []token.Pos) {
	fileLines := make(map[string][]string)
	for name, src := range sources {
		fileLines[name] = strings.Split(src, "\n")
	}
	for _, p := range lines {
		text := ""
		if ls, ok := fileLines[p.File]; ok && p.Line-1 < len(ls) {
			text = strings.TrimSpace(ls[p.Line-1])
		} else if p.File != "" {
			text = "(library)"
		}
		fmt.Printf("  %s:%d\t%s\n", p.File, p.Line, text)
	}
}

func parseSeed(s string) (string, int, error) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return "", 0, fmt.Errorf("seed %q is not of the form file:line", s)
	}
	line, err := strconv.Atoi(s[i+1:])
	if err != nil || line <= 0 {
		return "", 0, fmt.Errorf("seed %q has an invalid line number", s)
	}
	return s[:i], line, nil
}

func posLess(a, b token.Pos) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	return a.Line < b.Line
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinslice:", err)
		os.Exit(1)
	}
}
