// Command thinslice slices MiniJava-style programs from a seed
// statement:
//
//	thinslice -seed prog.mj:42 prog.mj [more.mj ...]
//
// By default it prints the thin slice (producer statements, paper §2).
// Flags select the traditional baseline, control dependences, the
// context-sensitive tabulation slicer, reduced pointer-analysis
// precision, and on-demand explanations of heap aliasing and control
// dependences for the slice (§4).
//
// Batch mode slices many seeds over one shared analysis session:
//
//	thinslice -seeds-file seeds.txt prog.mj [more.mj ...]
//
// with one file.mj:line seed per line (#-comments and blanks skipped).
//
// The check subcommand runs the thin-slice-powered checker suite:
//
//	thinslice check [-checks nilderef,taint] [-json] prog.mj...
//
// Every finding carries a thin-slice witness — the shortest producer
// chain explaining the suspicious value, the same chains -why prints.
//
// The serve subcommand exposes slicing, batch slicing, and checking
// over HTTP with admission control, bounded caches, per-program
// circuit breakers, and graceful drain:
//
//	thinslice serve -addr :8080
//
// The watch subcommand keeps an incremental session alive over the
// named files and re-slices the seeds whenever a file changes on disk
// (see watch.go):
//
//	thinslice watch -seed prog.mj:42 prog.mj [more.mj ...]
//
// Resource limits: -timeout and -max-steps bound the whole run, and
// -fuel bounds -dynamic execution. A run that was cut short but still
// produced a (partial) result exits with code 3; hard failures exit 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"thinslice/internal/analyzer"
	"thinslice/internal/budget"
	"thinslice/internal/checkers"
	"thinslice/internal/cluster"
	"thinslice/internal/core"
	"thinslice/internal/core/expand"
	"thinslice/internal/csslice"
	"thinslice/internal/diskstore"
	"thinslice/internal/interp"
	"thinslice/internal/ir"
	"thinslice/internal/lang/token"
	"thinslice/internal/server"
	"thinslice/internal/session"
)

// Exit codes: 0 ok, 1 hard failure, 2 usage, 3 truncated-but-usable
// result (and, for check, 3 also means findings were reported).
const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
	exitPartial = 3
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable entry point: it dispatches on the optional
// subcommand and never calls os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "check":
			return runCheck(args[1:], stdout, stderr)
		case "serve":
			return runServe(args[1:], stdout, stderr)
		case "watch":
			return runWatch(args[1:], stdout, stderr)
		case "cache":
			return runCache(args[1:], stdout, stderr)
		}
	}
	return runSlice(args, stdout, stderr)
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "thinslice:", err)
	return exitFailure
}

// readSources loads the named program files.
func readSources(paths []string) (map[string]string, error) {
	sources := make(map[string]string, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		sources[path] = string(data)
	}
	return sources, nil
}

// newBudget builds the run-wide budget from the shared limit flags.
func newBudget(timeout time.Duration, maxSteps int64) *budget.Budget {
	var bopts []budget.Option
	if timeout > 0 {
		bopts = append(bopts, budget.WithTimeout(timeout))
	}
	if maxSteps > 0 {
		bopts = append(bopts, budget.WithSteps(maxSteps))
	}
	return budget.New(nil, bopts...)
}

// runCheck implements the `thinslice check` subcommand.
func runCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("thinslice check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "all", "comma-separated checkers to run (all = every checker)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sources := fs.String("taint-sources", "", "comma-separated taint sources for the taint checker (default input,inputInt)")
	sinks := fs.String("taint-sinks", "", "comma-separated sink method names for the taint checker")
	includeLib := fs.Bool("include-library", false, "also report findings inside the container prelude")
	noVerify := fs.Bool("no-verify", false, "skip the IR verifier pass before checking")
	timeout := fs.Duration("timeout", 0, "wall-clock bound for the whole run (0 = unlimited)")
	maxSteps := fs.Int64("max-steps", 0, "per-phase analysis step cap (0 = unlimited)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: thinslice check [flags] file.mj...")
		fmt.Fprintln(stderr, "checkers:")
		for _, c := range checkers.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", c.Name(), c.Desc())
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return exitUsage
	}
	checks, err := checkers.Select(*checksFlag)
	if err != nil {
		return fail(stderr, err)
	}
	srcs, err := readSources(fs.Args())
	if err != nil {
		return fail(stderr, err)
	}

	opts := []analyzer.Option{analyzer.WithBudget(newBudget(*timeout, *maxSteps))}
	if !*noVerify {
		opts = append(opts, analyzer.WithVerifyIR())
	}
	a, err := analyzer.Analyze(srcs, opts...)
	if err != nil {
		return fail(stderr, err)
	}

	cfg := checkers.Config{IncludeLibrary: *includeLib}
	if *sources != "" {
		cfg.TaintSources = splitList(*sources)
	}
	if *sinks != "" {
		cfg.TaintSinks = splitList(*sinks)
	}
	rep := checkers.Run(a, checks, cfg)
	if rep.Truncated {
		fmt.Fprintf(stderr, "thinslice: warning: budget exhausted; findings are partial (%v)\n", rep.Err)
	}
	if *jsonOut {
		if err := writeJSONReport(stdout, rep); err != nil {
			return fail(stderr, err)
		}
	} else {
		writeTextReport(stdout, rep, len(checks))
	}
	if rep.Truncated || len(rep.Findings) > 0 {
		return exitPartial
	}
	return exitOK
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func writeTextReport(w io.Writer, rep *checkers.Report, nChecks int) {
	for _, f := range rep.Findings {
		fmt.Fprintln(w, f)
	}
	suffix := ""
	if rep.Truncated {
		suffix = " (truncated)"
	}
	fmt.Fprintf(w, "%d finding(s) from %d checker(s)%s\n", len(rep.Findings), nChecks, suffix)
}

// jsonFinding mirrors checkers.Finding with a flat, stable wire shape.
type jsonFinding struct {
	Checker string     `json:"checker"`
	File    string     `json:"file"`
	Line    int        `json:"line"`
	Message string     `json:"message"`
	Witness []jsonStep `json:"witness,omitempty"`
}

type jsonStep struct {
	Kind string `json:"kind"`
	File string `json:"file"`
	Line int    `json:"line"`
	Stmt string `json:"stmt"`
}

func writeJSONReport(w io.Writer, rep *checkers.Report) error {
	out := struct {
		Findings  []jsonFinding `json:"findings"`
		Truncated bool          `json:"truncated"`
	}{Findings: []jsonFinding{}, Truncated: rep.Truncated}
	for _, f := range rep.Findings {
		jf := jsonFinding{Checker: f.Checker, File: f.Pos.File, Line: f.Pos.Line, Message: f.Message}
		if f.Witness != nil {
			for i, step := range f.Witness.Chain {
				kind := "value"
				if i > 0 {
					kind = step.Kind.String()
				}
				p := step.Ins.Pos()
				jf.Witness = append(jf.Witness, jsonStep{Kind: kind, File: p.File, Line: p.Line, Stmt: step.Ins.String()})
			}
		}
		out.Findings = append(out.Findings, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runServe implements the `thinslice serve` subcommand: a hardened
// HTTP service exposing /slice, /batch, /check, /healthz, /readyz,
// and /statsz. SIGTERM or SIGINT starts a graceful drain.
func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("thinslice serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrent analyses (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max requests waiting beyond the running ones (0 = 4x workers)")
	queueWait := fs.Duration("queue-wait", 0, "max time a request may wait for a worker (0 = 2s)")
	timeout := fs.Duration("timeout", 0, "default per-request analysis deadline (0 = 10s)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp for client-requested deadlines (0 = 60s)")
	maxSteps := fs.Int64("max-steps", 0, "per-phase analysis step cap per request (0 = unlimited)")
	storeEntries := fs.Int("store-entries", 0, "artifact cache entry cap (0 = 256, -1 = unlimited)")
	storeBytes := fs.Int64("store-bytes", 0, "artifact cache cost cap in bytes (0 = 256 MiB, -1 = unlimited)")
	breakerFailures := fs.Int("breaker-failures", 0, "consecutive failures before a program's circuit opens (0 = 3)")
	breakerBackoff := fs.Duration("breaker-backoff", 0, "initial circuit-open window, doubling per re-open (0 = 500ms)")
	drain := fs.Duration("drain", 15*time.Second, "grace period for in-flight requests on shutdown")
	maxRequestBytes := fs.Int64("max-request-bytes", 0, "request body size cap (0 = 4 MiB)")
	cacheDir := fs.String("cache-dir", "", "persistent artifact cache directory; artifacts survive restarts (empty = memory only)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "disk cache size cap in bytes (0 = 256 MiB)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof")
	clusterPath := fs.String("cluster", "", "cluster topology JSON; shards programs across replicas (requires -self and -cache-dir)")
	self := fs.String("self", "", "this replica's name in the -cluster topology")
	hedgeAfter := fs.Duration("hedge-after", 0, "latency threshold before a forwarded request is hedged to a fallback owner (0 = 75ms)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: thinslice serve [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "thinslice serve: unexpected arguments; programs are posted to /slice")
		return exitUsage
	}
	if *clusterPath == "" && *self != "" {
		fmt.Fprintln(stderr, "thinslice serve: -self is only meaningful with -cluster")
		return exitUsage
	}
	if *clusterPath != "" {
		if *self == "" {
			fmt.Fprintln(stderr, "thinslice serve: -cluster requires -self (this replica's name in the topology)")
			return exitUsage
		}
		if *cacheDir == "" {
			fmt.Fprintln(stderr, "thinslice serve: -cluster requires -cache-dir (peer fetch and handoff serve from the disk tier)")
			return exitUsage
		}
	}

	srv, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		QueueWait:       *queueWait,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxSteps:        *maxSteps,
		MaxRequestBytes: *maxRequestBytes,
		StoreEntries:    *storeEntries,
		StoreBytes:      *storeBytes,
		BreakerFailures: *breakerFailures,
		BreakerBackoff:  *breakerBackoff,
		CacheDir:        *cacheDir,
		CacheMaxBytes:   *cacheMaxBytes,
		EnablePprof:     *pprofFlag,
	})
	if err != nil {
		return fail(stderr, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *clusterPath != "" {
		topo, err := cluster.LoadTopology(*clusterPath)
		if err != nil {
			return fail(stderr, err)
		}
		node, err := cluster.New(srv, cluster.Config{Self: *self, Topology: topo, HedgeAfter: *hedgeAfter})
		if err != nil {
			return fail(stderr, err)
		}
		// Bind the advertised topology address unless -addr was given
		// explicitly (e.g. ":8081" to listen on every interface while
		// peers dial the advertised host:port).
		listenAddr := *addr
		addrExplicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "addr" {
				addrExplicit = true
			}
		})
		if !addrExplicit {
			for _, m := range topo.Replicas {
				if m.Name == *self {
					listenAddr = m.Addr
				}
			}
		}
		ln, err := net.Listen("tcp", listenAddr)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "thinslice: replica %s serving on %s (%d-member cluster, replication %d)\n",
			*self, ln.Addr(), len(topo.Replicas), topo.Replication)
		if err := node.Run(ctx, ln, *drain); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintln(stdout, "thinslice: drained, bye")
		return exitOK
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "thinslice: serving on %s\n", ln.Addr())
	if err := srv.Run(ctx, ln, *drain); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintln(stdout, "thinslice: drained, bye")
	return exitOK
}

// runCache implements the `thinslice cache` subcommand: offline
// maintenance of the persistent artifact cache written by `serve
// -cache-dir`.
//
//	thinslice cache fsck [-repair] -dir DIR   verify every entry
//	thinslice cache gc -dir DIR               drop quarantine/tmp, re-apply budget
//
// fsck exits 0 when every entry verifies and 1 when any is corrupt.
func runCache(args []string, stdout, stderr io.Writer) int {
	usage := func() {
		fmt.Fprintln(stderr, "usage: thinslice cache fsck [-repair] -dir cache-dir")
		fmt.Fprintln(stderr, "       thinslice cache gc [-max-bytes n] -dir cache-dir")
	}
	if len(args) == 0 {
		usage()
		return exitUsage
	}
	verb := args[0]
	fs := flag.NewFlagSet("thinslice cache "+verb, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "cache directory (as given to serve -cache-dir)")
	maxBytes := fs.Int64("max-bytes", 0, "cache size cap in bytes (0 = 256 MiB)")
	repair := fs.Bool("repair", false, "quarantine corrupt entries instead of only reporting them (fsck)")
	if err := fs.Parse(args[1:]); err != nil {
		return exitUsage
	}
	if *dir == "" || fs.NArg() != 0 {
		usage()
		return exitUsage
	}
	cache, err := diskstore.Open(*dir, *maxBytes)
	if err != nil {
		return fail(stderr, err)
	}
	switch verb {
	case "fsck":
		entries := cache.Fsck(*repair)
		corrupt := 0
		for _, e := range entries {
			if e.Err != nil {
				corrupt++
				fmt.Fprintf(stdout, "corrupt %s: %v\n", e.Key, e.Err)
			}
		}
		fmt.Fprintf(stdout, "fsck: %d entries, %d corrupt\n", len(entries), corrupt)
		if corrupt > 0 {
			return exitFailure
		}
		return exitOK
	case "gc":
		removed := cache.GC()
		st := cache.Stats()
		fmt.Fprintf(stdout, "gc: removed %d files; %d entries, %d bytes kept\n", removed, st.Entries, st.Bytes)
		return exitOK
	default:
		usage()
		return exitUsage
	}
}

// runSlice implements the default slicing mode.
func runSlice(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("thinslice", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seedFlag := fs.String("seed", "", "seed statement as file.mj:line (required unless -seeds-file is given)")
	seedsFile := fs.String("seeds-file", "", "file listing one file.mj:line seed per line; slices all of them over one shared analysis")
	mode := fs.String("mode", "thin", "slicing mode: thin or traditional")
	control := fs.Bool("control", false, "follow control dependences (traditional only)")
	cs := fs.Bool("cs", false, "use the context-sensitive tabulation slicer (§5.3)")
	noObjSens := fs.Bool("noobjsens", false, "disable object-sensitive container handling")
	explainAliasing := fs.Bool("explain-aliasing", false, "print aliasing explanations for heap edges in the slice (§4.1)")
	explainControl := fs.Bool("explain-control", false, "print control explanations for the seed (§4.2)")
	why := fs.String("why", "", "explain why file.mj:line is in the slice (shortest producer chain)")
	dynamic := fs.Bool("dynamic", false, "execute the program and print the dynamic thin slice of the seed")
	inputs := fs.String("input", "", "comma-separated input() values for -dynamic")
	inputInts := fs.String("inputint", "", "comma-separated inputInt() values for -dynamic")
	timeout := fs.Duration("timeout", 0, "wall-clock bound for the whole run (e.g. 2s; 0 = unlimited)")
	maxSteps := fs.Int64("max-steps", 0, "per-phase analysis step cap (0 = unlimited)")
	fuel := fs.Int("fuel", 0, "instruction fuel for -dynamic execution (0 = default 2,000,000)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if (*seedFlag == "" && *seedsFile == "") || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: thinslice -seed file.mj:line [flags] file.mj...")
		fmt.Fprintln(stderr, "       thinslice -seeds-file seeds.txt [flags] file.mj...")
		fmt.Fprintln(stderr, "       thinslice check [flags] file.mj...")
		fs.PrintDefaults()
		return exitUsage
	}

	sources, err := readSources(fs.Args())
	if err != nil {
		return fail(stderr, err)
	}

	// One budget bounds the whole run: analysis phases and -dynamic
	// execution share the wall-clock deadline.
	bud := newBudget(*timeout, *maxSteps)

	var opts []analyzer.Option
	if *noObjSens {
		opts = append(opts, analyzer.WithObjSens(false))
	}
	opts = append(opts, analyzer.WithBudget(bud))
	a, err := analyzer.Analyze(sources, opts...)
	if err != nil {
		return fail(stderr, err)
	}
	partial := a.Partial()
	if partial {
		fmt.Fprintln(stderr, "thinslice: warning: budget exhausted during analysis; results may be incomplete")
	}

	thinMode := *mode == "thin"
	if !thinMode && *mode != "traditional" {
		return fail(stderr, fmt.Errorf("unknown mode %q", *mode))
	}

	if *seedsFile != "" {
		if *cs || *dynamic {
			return fail(stderr, fmt.Errorf("-seeds-file cannot be combined with -cs or -dynamic"))
		}
		return runBatch(stdout, stderr, a, sources, *seedsFile, thinMode, *control, partial)
	}

	seedFile, seedLine, err := parseSeed(*seedFlag)
	if err != nil {
		return fail(stderr, err)
	}
	seeds := a.SeedsAt(seedFile, seedLine)
	if len(seeds) == 0 {
		return fail(stderr, fmt.Errorf("no reachable statements at %s:%d", seedFile, seedLine))
	}

	if *dynamic {
		truncated, err := runDynamic(stdout, a, sources, seeds, *inputs, *inputInts, bud, *fuel)
		if err != nil {
			return fail(stderr, err)
		}
		if truncated || partial {
			return exitPartial
		}
		return exitOK
	}

	var lines []token.Pos
	if *cs {
		g, err := a.Session().CSGraph()
		if err != nil {
			return fail(stderr, err)
		}
		s := csslice.NewSlicer(g, thinMode, *control)
		slice := s.Slice(seeds...)
		for p := range csslice.SliceLines(slice) {
			lines = append(lines, p)
		}
		sortPos(lines)
		fmt.Fprintf(stdout, "%s slice (context-sensitive) of %s:%d: %d statements\n",
			*mode, seedFile, seedLine, len(slice))
	} else {
		var s *core.Slicer
		if thinMode {
			s = a.ThinSlicer()
		} else {
			s = a.TraditionalSlicer(*control)
		}
		slice := s.Slice(seeds...)
		lines = slice.Lines()
		sortPos(lines)
		if slice.Truncated {
			partial = true
			fmt.Fprintf(stderr, "thinslice: warning: slice truncated (%v)\n", slice.Err)
		}
		fmt.Fprintf(stdout, "%s slice of %s:%d: %d statements on %d lines\n",
			*mode, seedFile, seedLine, slice.Size(), len(lines))
		if *explainAliasing && thinMode {
			printAliasing(stdout, a, slice)
		}
	}
	printLines(stdout, sources, lines)

	if *why != "" && !*cs {
		whyFile, whyLine, err := parseSeed(*why)
		if err != nil {
			return fail(stderr, err)
		}
		var s *core.Slicer
		if thinMode {
			s = a.ThinSlicer()
		} else {
			s = a.TraditionalSlicer(*control)
		}
		if err := explainWhy(stdout, a, s, seeds, whyFile, whyLine); err != nil {
			return fail(stderr, err)
		}
	}

	if *explainControl {
		fmt.Fprintln(stdout, "\ncontrol explanations of the seed (paper §4.2):")
		for _, seed := range seeds {
			for _, src := range expand.ControlExplanation(a.Graph, seed) {
				fmt.Fprintf(stdout, "  %s: %s\n", src.Pos(), src)
			}
		}
	}

	if partial {
		return exitPartial
	}
	return exitOK
}

// runBatch slices every seed listed in seedsPath over the analysis'
// shared session: artifacts are built once and each seed costs only
// its own backward closure.
func runBatch(stdout, stderr io.Writer, a *analyzer.Analysis, sources map[string]string, seedsPath string, thinMode, control, partial bool) int {
	seeds, err := readSeedsFile(seedsPath)
	if err != nil {
		return fail(stderr, err)
	}
	if len(seeds) == 0 {
		return fail(stderr, fmt.Errorf("no seeds in %s", seedsPath))
	}
	opts := core.Options{Mode: core.Thin}
	modeName := "thin"
	if !thinMode {
		opts = core.Options{Mode: core.Traditional, FollowControl: control}
		modeName = "traditional"
	}
	// Transient internal faults (a panicked phase) are retried with
	// jittered backoff; deterministic failures (parse/type errors,
	// exhaustion, cancellation) surface immediately.
	var results []session.SeedResult
	err = budget.Retry(a.Budget().Context(), budget.RetryConfig{}, func(attempt int) error {
		if attempt > 1 {
			fmt.Fprintf(stderr, "thinslice: retrying batch after transient failure (attempt %d)\n", attempt)
		}
		var rerr error
		results, rerr = a.Session().SliceAll(opts, seeds)
		return rerr
	})
	if err != nil {
		return fail(stderr, err)
	}
	for i, r := range results {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if len(r.Instrs) == 0 {
			fmt.Fprintf(stdout, "%s slice of %s: no reachable statements\n", modeName, r.Seed)
			continue
		}
		lines := r.Slice.Lines()
		sortPos(lines)
		if r.Slice.Truncated {
			partial = true
			fmt.Fprintf(stderr, "thinslice: warning: slice of %s truncated (%v)\n", r.Seed, r.Slice.Err)
		}
		fmt.Fprintf(stdout, "%s slice of %s: %d statements on %d lines\n",
			modeName, r.Seed, r.Slice.Size(), len(lines))
		printLines(stdout, sources, lines)
	}
	if partial {
		return exitPartial
	}
	return exitOK
}

// readSeedsFile parses a seeds file: one file.mj:line per line, blank
// lines and #-comments skipped.
func readSeedsFile(path string) ([]session.Seed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var seeds []session.Seed
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, ln, err := parseSeed(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, i+1, err)
		}
		seeds = append(seeds, session.Seed{File: file, Line: ln})
	}
	return seeds, nil
}

// explainWhy prints the shortest producer chain from the seed to the
// named statement.
func explainWhy(w io.Writer, a *analyzer.Analysis, s *core.Slicer, seeds []ir.Instr, file string, line int) error {
	targets := a.SeedsAt(file, line)
	if len(targets) == 0 {
		return fmt.Errorf("no statements at %s:%d", file, line)
	}
	var path []core.PathStep
	for _, target := range targets {
		if p := s.PathTo(target, seeds...); p != nil && (path == nil || len(p) < len(path)) {
			path = p
		}
	}
	if path == nil {
		fmt.Fprintf(w, "\n%s:%d is NOT in the %s slice (an explainer statement; try -mode traditional,\n", file, line, s.Opts.Mode)
		fmt.Fprintln(w, "or ask for -explain-aliasing / -explain-control)")
		return nil
	}
	fmt.Fprintf(w, "\nwhy %s:%d is in the slice (%d-step producer chain):\n", file, line, len(path)-1)
	for i, step := range path {
		arrow := "seed"
		if i > 0 {
			arrow = "<-" + step.Kind.String() + "-"
		}
		fmt.Fprintf(w, "  %-12s %s: %s\n", arrow, step.Ins.Pos(), step.Ins)
		if step.ViaCall != nil {
			fmt.Fprintf(w, "  %-12s   (passed at call %s)\n", "", step.ViaCall.Pos())
		}
	}
	return nil
}

// runDynamic executes the program with scripted inputs and prints the
// dynamic thin slice (§1's dynamic-dependence extension). It reports
// whether execution was cut short by a resource bound (fuel, budget),
// in which case the printed slice covers only the executed prefix.
func runDynamic(w io.Writer, a *analyzer.Analysis, sources map[string]string, seeds []ir.Instr, inputCSV, intCSV string, bud *budget.Budget, fuel int) (bool, error) {
	m := interp.New(a.Prog)
	m.Trace = interp.NewTrace()
	m.Budget = bud
	if fuel > 0 {
		m.StepLimit = fuel
	}
	if inputCSV != "" {
		m.Inputs = strings.Split(inputCSV, ",")
	}
	for _, s := range strings.Split(intCSV, ",") {
		if s == "" {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return false, err
		}
		m.InputInts = append(m.InputInts, n)
	}
	runErr := m.Run("")
	for _, line := range m.Output {
		fmt.Fprintf(w, "output: %s\n", line)
	}
	truncated := interp.Truncated(runErr)
	if runErr != nil {
		fmt.Fprintf(w, "execution ended with: %v\n", runErr)
		if truncated {
			fmt.Fprintln(w, "(execution truncated; the dynamic slice covers the executed prefix)")
		}
	}
	members := make(map[ir.Instr]bool)
	for _, seed := range seeds {
		for ins := range m.Trace.DynamicThinSlice(seed) {
			members[ins] = true
		}
	}
	if len(members) == 0 {
		fmt.Fprintln(w, "seed statement was not executed on this input")
		return truncated, nil
	}
	var lines []token.Pos
	seen := make(map[token.Pos]bool)
	for ins := range members {
		p := ins.Pos()
		p.Col = 0
		if p.IsValid() && !seen[p] {
			seen[p] = true
			lines = append(lines, p)
		}
	}
	sortPos(lines)
	fmt.Fprintf(w, "dynamic thin slice: %d statements on %d lines\n", len(members), len(lines))
	printLines(w, sources, lines)
	return truncated, nil
}

func printAliasing(w io.Writer, a *analyzer.Analysis, slice *core.Slice) {
	pairs := expand.HeapPairs(a.Graph, slice)
	if len(pairs) == 0 {
		return
	}
	fmt.Fprintf(w, "\naliasing explanations (paper §4.1), %d heap edge(s):\n", len(pairs))
	for i, pair := range pairs {
		if i >= 8 {
			fmt.Fprintf(w, "  ... and %d more\n", len(pairs)-i)
			break
		}
		exp := expand.ExplainAliasing(a.Graph, pair)
		load := a.Graph.InstrOf(pair.Load)
		store := a.Graph.InstrOf(pair.Store)
		fmt.Fprintf(w, "  load %s <- store %s: %d common object(s)\n",
			load.Pos(), store.Pos(), len(exp.Common))
		for _, ins := range exp.Statements() {
			fmt.Fprintf(w, "    %s: %s\n", ins.Pos(), ins)
		}
	}
}

func printLines(w io.Writer, sources map[string]string, lines []token.Pos) {
	fileLines := make(map[string][]string)
	for name, src := range sources {
		fileLines[name] = strings.Split(src, "\n")
	}
	for _, p := range lines {
		text := ""
		if ls, ok := fileLines[p.File]; ok && p.Line-1 < len(ls) {
			text = strings.TrimSpace(ls[p.Line-1])
		} else if p.File != "" {
			text = "(library)"
		}
		fmt.Fprintf(w, "  %s:%d\t%s\n", p.File, p.Line, text)
	}
}

func parseSeed(s string) (string, int, error) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return "", 0, fmt.Errorf("seed %q is not of the form file:line", s)
	}
	line, err := strconv.Atoi(s[i+1:])
	if err != nil || line <= 0 {
		return "", 0, fmt.Errorf("seed %q has an invalid line number", s)
	}
	return s[:i], line, nil
}

// sortPos orders positions deterministically: by file, then line, then
// column — the total order every printed listing uses.
func sortPos(lines []token.Pos) {
	sort.Slice(lines, func(i, j int) bool {
		a, b := lines[i], lines[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
}
