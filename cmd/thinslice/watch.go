package main

// The watch subcommand keeps one incremental analysis session alive
// over a fixed set of program files and re-slices the watched seeds
// whenever a file changes on disk:
//
//	thinslice watch -seed prog.mj:42 [-checks nilderef] prog.mj...
//
// Changes are detected by polling modification times (stdlib only, no
// OS-specific watcher), so the loop works on any platform at the cost
// of -interval latency. The file list is fixed at startup: a watched
// file that disappears is removed from the program (and re-added if it
// reappears), but new files are not picked up.
//
// Each revision prints the updated slices, optional checker findings,
// and what the derivation graph actually re-derived — the point of the
// exercise is that a one-line edit re-lowers one method and re-solves
// deltas, not the world.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thinslice/internal/analyzer"
	"thinslice/internal/checkers"
	"thinslice/internal/core"
	"thinslice/internal/session"
)

// watchFileState is one watched file's last-seen stat snapshot.
type watchFileState struct {
	mtime   time.Time
	size    int64
	present bool
}

func runWatch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("thinslice watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seedFlag := fs.String("seed", "", "seed statement as file.mj:line")
	seedsFile := fs.String("seeds-file", "", "file listing one file.mj:line seed per line")
	checksFlag := fs.String("checks", "", "comma-separated checkers to run each revision (empty = none)")
	mode := fs.String("mode", "thin", "slicing mode: thin or traditional")
	control := fs.Bool("control", false, "follow control dependences (traditional only)")
	noObjSens := fs.Bool("noobjsens", false, "disable object-sensitive container handling")
	interval := fs.Duration("interval", 250*time.Millisecond, "file modification poll interval")
	maxRevs := fs.Int("max-revs", 0, "exit after printing this many revisions (0 = watch until interrupted)")
	verbose := fs.Bool("v", false, "print slice line listings, not just counts")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: thinslice watch -seed file.mj:line [flags] file.mj...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return exitUsage
	}
	thinMode := *mode == "thin"
	if !thinMode && *mode != "traditional" {
		return fail(stderr, fmt.Errorf("unknown mode %q", *mode))
	}

	var seeds []session.Seed
	if *seedFlag != "" {
		file, line, err := parseSeed(*seedFlag)
		if err != nil {
			return fail(stderr, err)
		}
		seeds = append(seeds, session.Seed{File: file, Line: line})
	}
	if *seedsFile != "" {
		more, err := readSeedsFile(*seedsFile)
		if err != nil {
			return fail(stderr, err)
		}
		seeds = append(seeds, more...)
	}
	if len(seeds) == 0 && *checksFlag == "" {
		return fail(stderr, fmt.Errorf("watch needs -seed, -seeds-file, or -checks"))
	}
	var checks []checkers.Checker
	if *checksFlag != "" {
		var err error
		if checks, err = checkers.Select(*checksFlag); err != nil {
			return fail(stderr, err)
		}
	}

	paths := fs.Args()
	sources, err := readSources(paths)
	if err != nil {
		return fail(stderr, err)
	}
	states := make(map[string]watchFileState, len(paths))
	for _, path := range paths {
		if info, err := os.Stat(path); err == nil {
			states[path] = watchFileState{mtime: info.ModTime(), size: info.Size(), present: true}
		}
	}

	// Incremental sessions run unbudgeted: the delta paths refuse to
	// engage under a budget, and an interactive watch wants warm edits
	// to stay cheap, not truncated.
	sess := session.Open(sources, session.WithIncremental(), session.WithObjSens(!*noObjSens))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	opts := core.Options{Mode: core.Thin}
	if !thinMode {
		opts = core.Options{Mode: core.Traditional, FollowControl: *control}
	}
	w := &watcher{
		stdout: stdout, stderr: stderr,
		sess: sess, seeds: seeds, checks: checks,
		opts: opts, sources: sources, verbose: *verbose,
	}
	w.revision(0, "cold build")
	if *maxRevs == 1 {
		return exitOK
	}

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	rev, printed := 0, 1
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(stdout, "thinslice: watch interrupted, bye")
			return exitOK
		case <-ticker.C:
		}
		changed := w.pollEdits(paths, states)
		if len(changed) == 0 {
			continue
		}
		rev++
		w.revision(rev, strings.Join(changed, ", "))
		printed++
		if *maxRevs > 0 && printed >= *maxRevs {
			return exitOK
		}
	}
}

// watcher is the per-run state of the watch loop.
type watcher struct {
	stdout, stderr io.Writer
	sess           *session.Session
	seeds          []session.Seed
	checks         []checkers.Checker
	opts           core.Options
	sources        map[string]string
	verbose        bool
}

// pollEdits stats every watched path, applies content changes to the
// session, and returns a description of each real edit (empty when
// nothing changed, including touched-but-identical files).
func (w *watcher) pollEdits(paths []string, states map[string]watchFileState) []string {
	var changed []string
	for _, path := range paths {
		prev := states[path]
		info, err := os.Stat(path)
		if err != nil {
			if prev.present {
				states[path] = watchFileState{}
				delete(w.sources, path)
				w.sess.Remove(path)
				changed = append(changed, path+" removed")
			}
			continue
		}
		if prev.present && info.ModTime().Equal(prev.mtime) && info.Size() == prev.size {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(w.stderr, "thinslice: reading %s: %v\n", path, err)
			continue
		}
		states[path] = watchFileState{mtime: info.ModTime(), size: info.Size(), present: true}
		if content := string(data); w.sources[path] != content {
			w.sources[path] = content
			w.sess.Update(path, content)
			changed = append(changed, path)
		}
	}
	return changed
}

// revision answers one revision: slices, findings, and the incremental
// counter deltas showing what was actually re-derived.
func (w *watcher) revision(rev int, why string) {
	start := time.Now()
	before := w.sess.Stats()
	results, findings, err := w.query()
	after := w.sess.Stats()
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(w.stdout, "rev %d (%s): error in %s\n", rev, why, elapsed.Round(time.Millisecond))
		fmt.Fprintf(w.stderr, "thinslice: %v\n", err)
		return
	}
	fmt.Fprintf(w.stdout, "rev %d (%s): %s in %s\n", rev, why, incrementalSummary(before, after), elapsed.Round(time.Millisecond))
	for _, r := range results {
		if len(r.Instrs) == 0 {
			fmt.Fprintf(w.stdout, "  %s slice of %s: no reachable statements\n", w.opts.Mode, r.Seed)
			continue
		}
		lines := r.Slice.Lines()
		sortPos(lines)
		if r.Slice.Truncated {
			fmt.Fprintf(w.stderr, "thinslice: warning: slice of %s truncated (%v)\n", r.Seed, r.Slice.Err)
		}
		fmt.Fprintf(w.stdout, "  %s slice of %s: %d statements on %d lines\n",
			w.opts.Mode, r.Seed, r.Slice.Size(), len(lines))
		if w.verbose {
			printLines(w.stdout, w.sources, lines)
		}
	}
	for _, f := range findings {
		fmt.Fprintf(w.stdout, "  %s\n", f)
	}
	if w.checks != nil {
		fmt.Fprintf(w.stdout, "  %d finding(s)\n", len(findings))
	}
}

// query runs one revision's slices and checks over the live session.
func (w *watcher) query() ([]session.SeedResult, []checkers.Finding, error) {
	var results []session.SeedResult
	if len(w.seeds) > 0 {
		var err error
		if results, err = w.sess.SliceAll(w.opts, w.seeds); err != nil {
			return nil, nil, err
		}
	}
	var findings []checkers.Finding
	if len(w.checks) > 0 {
		a, err := analyzer.FromSession(w.sess)
		if err != nil {
			return nil, nil, err
		}
		rep := checkers.Run(a, w.checks, checkers.Config{})
		findings = rep.Findings
		if rep.Truncated {
			fmt.Fprintln(w.stderr, "thinslice: warning: findings are partial")
		}
	}
	return results, findings, nil
}

// incrementalSummary renders the Stats delta around one revision as a
// one-line account of the re-derivation work.
func incrementalSummary(before, after session.Stats) string {
	lowered := after.UnitLowers - before.UnitLowers
	reused := after.UnitReuses - before.UnitReuses
	var parts []string
	if lowered > 0 || reused > 0 {
		parts = append(parts, fmt.Sprintf("%d unit(s) lowered, %d reused", lowered, reused))
	}
	if n := after.DeltaSolves - before.DeltaSolves; n > 0 {
		parts = append(parts, "delta solve")
	}
	if n := after.PointsTos - before.PointsTos; n > 0 {
		parts = append(parts, "full solve")
	}
	if n := after.DeltaSDGs - before.DeltaSDGs; n > 0 {
		parts = append(parts, "delta SDG")
	}
	if n := after.SDGs - before.SDGs; n > 0 {
		parts = append(parts, "full SDG")
	}
	if len(parts) == 0 {
		return "everything cached"
	}
	return strings.Join(parts, ", ")
}
