package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"thinslice/internal/cluster"
	"thinslice/internal/papercases"
)

func TestServeClusterFlagValidation(t *testing.T) {
	topo := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(topo, []byte(`{"replicas":[{"name":"a","addr":"127.0.0.1:1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"cluster without self", []string{"serve", "-cluster", topo, "-cache-dir", t.TempDir()}, exitUsage},
		{"cluster without cache-dir", []string{"serve", "-cluster", topo, "-self", "a"}, exitUsage},
		{"self without cluster", []string{"serve", "-self", "a"}, exitUsage},
		{"missing topology file", []string{"serve", "-cluster", filepath.Join(t.TempDir(), "nope.json"), "-self", "a", "-cache-dir", t.TempDir()}, exitFailure},
		{"self not in topology", []string{"serve", "-cluster", topo, "-self", "ghost", "-cache-dir", t.TempDir()}, exitFailure},
	}
	for _, c := range cases {
		var out, errOut bytes.Buffer
		if got := run(c.args, &out, &errOut); got != c.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", c.name, got, c.want, errOut.String())
		}
	}
}

// TestHelperClusterProcess: when re-executed with the env vars set, the
// test binary becomes one `thinslice serve -cluster` replica.
func TestHelperClusterProcess(t *testing.T) {
	if os.Getenv("THINSLICE_HELPER_CLUSTER") != "1" {
		t.Skip("helper process for TestServeClusterDrainHandoff")
	}
	os.Exit(run([]string{
		"serve",
		"-cluster", os.Getenv("THINSLICE_HELPER_TOPO"),
		"-self", os.Getenv("THINSLICE_HELPER_SELF"),
		"-cache-dir", os.Getenv("THINSLICE_HELPER_CACHE"),
		"-drain", "30s",
	}, os.Stdout, os.Stderr))
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func startClusterReplica(t *testing.T, topoPath, self, cacheDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperClusterProcess$")
	cmd.Env = append(os.Environ(),
		"THINSLICE_HELPER_CLUSTER=1",
		"THINSLICE_HELPER_TOPO="+topoPath,
		"THINSLICE_HELPER_SELF="+self,
		"THINSLICE_HELPER_CACHE="+cacheDir,
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		re := regexp.MustCompile(`^thinslice: replica \S+ serving on `)
		for sc.Scan() {
			if re.MatchString(sc.Text()) {
				close(ready)
				break
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case <-ready:
		return cmd
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("cluster replica never reported its address")
		return nil
	}
}

// TestServeClusterDrainHandoff is the real-process drill: two
// `serve -cluster` replicas, one warmed and SIGTERMed. The drain must
// hand its artifacts to the survivor, and `cache fsck` over the
// survivor's directory must find them all intact.
func TestServeClusterDrainHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process drill skipped in -short mode")
	}
	topoPath := filepath.Join(t.TempDir(), "topo.json")
	addrA, addrB := freePort(t), freePort(t)
	topoDoc := fmt.Sprintf(`{"replicas":[{"name":"a","addr":"%s"},{"name":"b","addr":"%s"}]}`, addrA, addrB)
	if err := os.WriteFile(topoPath, []byte(topoDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	procA := startClusterReplica(t, topoPath, "a", dirA)
	defer procA.Process.Kill()
	procB := startClusterReplica(t, topoPath, "b", dirB)
	defer func() {
		procB.Process.Signal(syscall.SIGTERM)
		procB.Wait()
	}()

	// Warm replica a with a forced-local build (the forwarded marker
	// pins the request to the receiving replica regardless of owner).
	body, err := json.Marshal(map[string]any{
		"sources": map[string]string{papercases.FirstNamesFile: papercases.FirstNames},
		"seed":    fmt.Sprintf("%s:%d", papercases.FirstNamesFile, papercases.Line(papercases.FirstNames, "// SEED")),
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+addrA+"/slice", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("warming replica a: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming replica a: HTTP %d", resp.StatusCode)
	}

	// Graceful shutdown: drain streams a's warm artifacts to b.
	if err := procA.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := procA.Wait(); err != nil {
		t.Fatalf("replica a exited uncleanly: %v", err)
	}

	// The survivor's cache holds the handed-off records, all intact.
	var out bytes.Buffer
	if code := run([]string{"cache", "fsck", "-dir", dirB}, &out, &out); code != exitOK {
		t.Fatalf("fsck on survivor's cache failed (exit %d): %s", code, out.String())
	}
	fsck := out.String()
	if !strings.Contains(fsck, ", 0 corrupt") {
		t.Fatalf("survivor cache has corruption: %s", fsck)
	}
	if strings.Contains(fsck, "fsck: 0 entries") {
		t.Fatalf("survivor cache is empty; drain handed nothing off: %s", fsck)
	}
}
