package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer guards a bytes.Buffer the watch goroutine writes while
// the test polls it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls the buffer until the substring appears.
func waitFor(t *testing.T, buf *syncBuffer, substr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(buf.String(), substr) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("output never contained %q:\n%s", substr, buf.String())
}

// TestWatchCLIIncremental drives the watch subcommand end to end: the
// cold revision full-builds, and an on-disk single-method edit is
// answered with a delta revision (units reused, delta solve, delta
// SDG) before the loop exits via -max-revs.
func TestWatchCLIIncremental(t *testing.T) {
	dir := t.TempDir()
	alpha := filepath.Join(dir, "alpha.mj")
	mainf := filepath.Join(dir, "main.mj")
	if err := os.WriteFile(alpha, []byte("class Alpha {\n    int val;\n    void set(int v) { this.val = v; }\n    int get() { return this.val; }\n    int bump(int x) { return x + 1; }\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mainf, []byte("class Main {\n    static void main() {\n        Alpha a = new Alpha();\n        a.set(3);\n        int x = a.bump(a.get());\n        print(x);\n    }\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut syncBuffer
	code := make(chan int, 1)
	go func() {
		code <- run([]string{
			"watch", "-seed", mainf + ":6", "-interval", "10ms", "-max-revs", "2", alpha, mainf,
		}, &out, &errOut)
	}()

	waitFor(t, &out, "rev 0 (cold build)")
	// Same line shape, one literal changed: exactly one unit dirties.
	if err := os.WriteFile(alpha, []byte("class Alpha {\n    int val;\n    void set(int v) { this.val = v; }\n    int get() { return this.val; }\n    int bump(int x) { return x + 2; }\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	select {
	case c := <-code:
		if c != exitOK {
			t.Fatalf("watch exited %d\nstdout:\n%s\nstderr:\n%s", c, out.String(), errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("watch did not exit after the edit\nstdout:\n%s", out.String())
	}

	got := out.String()
	for _, want := range []string{
		"rev 0 (cold build): ",
		"full solve",
		"rev 1 (" + alpha + "): ",
		"1 unit(s) lowered",
		"delta solve",
		"delta SDG",
		"thin slice of " + mainf + ":6:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(strings.SplitN(got, "rev 1", 2)[1], "full solve") {
		t.Errorf("warm revision ran a full solve:\n%s", got)
	}
}
