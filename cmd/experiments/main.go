// Command experiments regenerates the paper's evaluation tables over
// the synthetic benchmark corpus:
//
//	experiments -table 1        benchmark characteristics (Table 1)
//	experiments -table 2        locating injected bugs (Table 2)
//	experiments -table 3        understanding tough casts (Table 3)
//	experiments -scalability    §6.1 CI vs CS-with-heap-params growth
//	experiments -all            everything
//
// Use -scale N to grow the generated benchmarks.
package main

import (
	"flag"
	"fmt"
	"os"

	"thinslice/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (1, 2, or 3)")
	scalability := flag.Bool("scalability", false, "run the scalability comparison")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 1, "benchmark generator scale")
	flag.Parse()

	if !*all && *table == 0 && !*scalability {
		*all = true
	}
	run := func(n int) bool { return *all || *table == n }

	if run(1) {
		rows, err := experiments.Table1(*scale)
		exitOn(err)
		experiments.WriteTable1(os.Stdout, rows)
		fmt.Println()
	}
	if run(2) {
		rows, sum, err := experiments.Table2(*scale)
		exitOn(err)
		experiments.WriteTaskTable(os.Stdout,
			"Table 2: locating bugs (BFS-inspected statements until the bug)", rows, sum)
		hopeless, err := experiments.Hopeless(*scale)
		exitOn(err)
		experiments.WriteHopeless(os.Stdout, hopeless)
		fmt.Println()
	}
	if run(3) {
		rows, sum, err := experiments.Table3(*scale)
		exitOn(err)
		experiments.WriteTaskTable(os.Stdout,
			"Table 3: understanding tough casts (BFS-inspected statements)", rows, sum)
		fmt.Println()
	}
	if *all || *scalability {
		rows, err := experiments.Scalability(*scale)
		exitOn(err)
		experiments.WriteScalability(os.Stdout, rows)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
